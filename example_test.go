package transit_test

import (
	"fmt"
	"log"
	"math"

	transit "tieredpricing"
)

// The flows every example starts from: observed demands (Mbps) at a $20
// blended rate, with the distance each flow travels in the ISP's network.
func exampleFlows() []transit.Flow {
	return []transit.Flow{
		{ID: "metro", Demand: 800, Distance: 8},
		{ID: "regional", Demand: 420, Distance: 60},
		{ID: "national", Demand: 260, Distance: 300},
		{ID: "continental", Demand: 115, Distance: 900},
		{ID: "transatlantic", Demand: 40, Distance: 3600},
	}
}

// ExampleNewMarket fits a market and inspects the §4.1 calibration: the
// blended rate is the optimal single-tier price by construction.
func ExampleNewMarket() {
	m, err := transit.NewMarket(exampleFlows(),
		transit.CED{Alpha: 1.1}, transit.Linear{Theta: 0.2}, 20)
	if err != nil {
		log.Fatal(err)
	}
	out, err := m.Run(transit.Optimal{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-tier price: $%.2f (blended rate $%.2f)\n", out.Prices[0], m.P0)
	fmt.Printf("capture at one tier: %.2f\n", math.Abs(out.Capture))
	// Output:
	// single-tier price: $20.00 (blended rate $20.00)
	// capture at one tier: 0.00
}

// ExampleMarket_Run structures three optimal tiers and prints their
// prices — local traffic gets cheaper, long-haul more expensive.
func ExampleMarket_Run() {
	m, err := transit.NewMarket(exampleFlows(),
		transit.CED{Alpha: 1.1}, transit.Linear{Theta: 0.2}, 20)
	if err != nil {
		log.Fatal(err)
	}
	out, err := m.Run(transit.Optimal{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for b, price := range out.Prices {
		fmt.Printf("tier %d: $%.2f/Mbps (%d destinations)\n", b, price, len(out.Partition[b]))
	}
	// Output:
	// tier 0: $15.90/Mbps (2 destinations)
	// tier 1: $25.66/Mbps (2 destinations)
	// tier 2: $92.07/Mbps (1 destinations)
}

// ExampleDecidePeering classifies the Figure 2 bypass decision.
func ExampleDecidePeering() {
	outcome, err := transit.DecidePeering(transit.PeeringInputs{
		BlendedRate:        20,
		ISPCost:            5,
		Margin:             0.3,
		AccountingOverhead: 1,
		DirectCost:         10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(outcome)
	// Output:
	// market-failure
}

// ExampleAggregateFlows coarsens a market while conserving demand.
func ExampleAggregateFlows() {
	agg, err := transit.AggregateFlows(exampleFlows(), 2)
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, f := range agg {
		total += f.Demand
	}
	fmt.Printf("%d aggregates, %.0f Mbps total\n", len(agg), total)
	// Output:
	// 2 aggregates, 1635 Mbps total
}
