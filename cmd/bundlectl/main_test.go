package main

import (
	"os"
	"path/filepath"
	"testing"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/traces"
)

func TestReadMeta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.txt")
	content := "dataset=euisp\nseed=1\nblended_rate=20\nduration_sec=86400\nnoise\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	meta, err := readMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.dataset != "euisp" || meta.p0 != 20 || meta.duration != 86400 {
		t.Fatalf("meta = %+v", meta)
	}
}

func TestReadMetaErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := readMeta(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("dataset=euisp\nblended_rate=NaNope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readMeta(bad); err == nil {
		t.Error("expected parse error")
	}
	incomplete := filepath.Join(dir, "inc.txt")
	if err := os.WriteFile(incomplete, []byte("dataset=euisp\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readMeta(incomplete); err == nil {
		t.Error("expected incomplete-metadata error")
	}
}

func TestLookupStrategy(t *testing.T) {
	for _, name := range []string{
		"optimal", "profit-weighted", "cost-weighted", "demand-weighted",
		"cost division", "index division", "class-aware profit-weighted",
	} {
		s, err := lookupStrategy(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("lookup %q returned %q", name, s.Name())
		}
	}
	if _, err := lookupStrategy("nope"); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

func TestVerifyRecovery(t *testing.T) {
	dir := t.TempDir()
	flows := []econ.Flow{
		{ID: "a", Demand: 10, Distance: 5, Region: econ.RegionMetro},
		{ID: "b", Demand: 20, Distance: 50, Region: econ.RegionNational},
	}
	path := filepath.Join(dir, "truth.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := traces.WriteFlowsCSV(f, flows); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Exact recovery passes.
	if err := verifyRecovery(flows, path); err != nil {
		t.Fatalf("exact recovery: %v", err)
	}
	// 1% error passes (within sampling tolerance).
	near := append([]econ.Flow(nil), flows...)
	near[0].Demand *= 1.01
	if err := verifyRecovery(near, path); err != nil {
		t.Fatalf("1%% error should pass: %v", err)
	}
	// 10% error fails.
	far := append([]econ.Flow(nil), flows...)
	far[1].Demand *= 1.10
	if err := verifyRecovery(far, path); err == nil {
		t.Error("10% error should fail")
	}
	// Count mismatch fails.
	if err := verifyRecovery(flows[:1], path); err == nil {
		t.Error("count mismatch should fail")
	}
	// Missing truth file fails.
	if err := verifyRecovery(flows, filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing truth should fail")
	}
}

// TestRunEndToEnd drives the full operator workflow in-process: generate
// a trace directory (as tracegen would) and run bundlectl's pipeline on
// it.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ds, err := traces.EUISP(5)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for router, stream := range streams {
		if err := os.WriteFile(filepath.Join(dir, sanitizeName(router)+".nf5"), stream, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	geo, err := os.Create(filepath.Join(dir, "geoip.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Geo.WriteCSV(geo); err != nil {
		t.Fatal(err)
	}
	geo.Close()
	meta := "dataset=euisp\nblended_rate=20\nduration_sec=86400\n"
	if err := os.WriteFile(filepath.Join(dir, "meta.txt"), []byte(meta), 0o644); err != nil {
		t.Fatal(err)
	}
	truth, err := os.Create(filepath.Join(dir, "truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := traces.WriteFlowsCSV(truth, ds.Flows); err != nil {
		t.Fatal(err)
	}
	truth.Close()

	if err := run(dir, 3, 2, "ced", 1.1, 0.2, 0.2, "profit-weighted",
		filepath.Join(dir, "truth.csv")); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Bad inputs surface as errors, not panics.
	if err := run(dir, 3, 1, "nope", 1.1, 0.2, 0.2, "profit-weighted", ""); err == nil {
		t.Error("expected error for unknown model")
	}
	if err := run(dir, 3, 1, "ced", 1.1, 0.2, 0.2, "nope", ""); err == nil {
		t.Error("expected error for unknown strategy")
	}
	if err := run(t.TempDir(), 3, 1, "ced", 1.1, 0.2, 0.2, "profit-weighted", ""); err == nil {
		t.Error("expected error for empty directory")
	}
}

// sanitizeName mirrors tracegen's filename sanitation for the test
// fixture (router names may contain spaces).
func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}
