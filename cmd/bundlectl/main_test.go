package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/traces"
)

// writeTraceDir materializes a tracegen-shaped directory; withStreams
// controls whether the .nf5 capture files are included.
func writeTraceDir(t *testing.T, ds *traces.Dataset, streams map[string][]byte, withStreams bool) string {
	t.Helper()
	dir := t.TempDir()
	if withStreams {
		for router, stream := range streams {
			if err := os.WriteFile(filepath.Join(dir, sanitizeName(router)+".nf5"), stream, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	geo, err := os.Create(filepath.Join(dir, "geoip.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Geo.WriteCSV(geo); err != nil {
		t.Fatal(err)
	}
	geo.Close()
	meta, err := os.Create(filepath.Join(dir, "meta.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := traces.WriteMeta(meta, traces.Meta{
		Dataset: ds.Name, Flows: len(ds.Flows), P0: ds.P0,
		DurationSec: ds.DurationSec, Sampling: int(ds.SamplingInterval), Routers: len(streams),
	}); err != nil {
		t.Fatal(err)
	}
	meta.Close()
	return dir
}

func TestVerifyRecovery(t *testing.T) {
	dir := t.TempDir()
	flows := []econ.Flow{
		{ID: "a", Demand: 10, Distance: 5, Region: econ.RegionMetro},
		{ID: "b", Demand: 20, Distance: 50, Region: econ.RegionNational},
	}
	path := filepath.Join(dir, "truth.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := traces.WriteFlowsCSV(f, flows); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Exact recovery passes.
	if err := verifyRecovery(io.Discard, flows, path); err != nil {
		t.Fatalf("exact recovery: %v", err)
	}
	// 1% error passes (within sampling tolerance).
	near := append([]econ.Flow(nil), flows...)
	near[0].Demand *= 1.01
	if err := verifyRecovery(io.Discard, near, path); err != nil {
		t.Fatalf("1%% error should pass: %v", err)
	}
	// 10% error fails.
	far := append([]econ.Flow(nil), flows...)
	far[1].Demand *= 1.10
	if err := verifyRecovery(io.Discard, far, path); err == nil {
		t.Error("10% error should fail")
	}
	// Count mismatch fails.
	if err := verifyRecovery(io.Discard, flows[:1], path); err == nil {
		t.Error("count mismatch should fail")
	}
	// Missing truth file fails.
	if err := verifyRecovery(io.Discard, flows, filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing truth should fail")
	}
}

// TestRunEndToEnd drives the full operator workflow in-process: generate
// a trace directory (as tracegen would) and run bundlectl's pipeline on
// it.
func TestRunEndToEnd(t *testing.T) {
	ds, err := traces.EUISP(5)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	dir := writeTraceDir(t, ds, streams, true)
	truth, err := os.Create(filepath.Join(dir, "truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := traces.WriteFlowsCSV(truth, ds.Flows); err != nil {
		t.Fatal(err)
	}
	truth.Close()

	base := runConfig{
		dir: dir, tiers: 3, workers: 2, model: "ced", alpha: 1.1, s0: 0.2,
		theta: 0.2, strategy: "profit-weighted",
		truth: filepath.Join(dir, "truth.csv"), out: io.Discard,
	}
	if err := run(context.Background(), base); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Bad inputs surface as errors, not panics.
	for _, mutate := range []func(*runConfig){
		func(c *runConfig) { c.model = "nope"; c.truth = "" },
		func(c *runConfig) { c.strategy = "nope"; c.truth = "" },
		func(c *runConfig) { c.dir = t.TempDir(); c.truth = "" },
	} {
		cfg := base
		mutate(&cfg)
		if err := run(context.Background(), cfg); err == nil {
			t.Errorf("bad config %+v accepted", cfg)
		}
	}
}

// TestRunUDPGracefulShutdown covers the satellite: live UDP capture,
// interrupted by context cancellation (as SIGINT/SIGTERM would), drains
// the listener and prices the partial capture instead of dying.
func TestRunUDPGracefulShutdown(t *testing.T) {
	ds, err := traces.EUISP(7)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// No .nf5 files: all demand arrives over the wire.
	dir := writeTraceDir(t, ds, streams, false)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	cfg := runConfig{
		dir: dir, tiers: 3, workers: 1, model: "ced", alpha: 1.1,
		theta: 0.2, strategy: "profit-weighted",
		udp: "127.0.0.1:0", out: &buf,
		onListen: func(srv *netflow.CollectorServer) {
			// Replay the capture over UDP, paced so the loopback socket
			// buffer keeps up. Loss is acceptable: the assertion is that a
			// partial capture is flushed and priced, not lossless UDP.
			defer cancel() // deliver the "signal" once the replay is done
			conn, err := net.Dial("udp", srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			sent := 0
			for _, stream := range streams {
				rd := netflow.NewReader(bytes.NewReader(stream))
				for {
					h, recs, err := rd.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Error(err)
						return
					}
					pkt, err := netflow.EncodePacket(h, recs)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := conn.Write(pkt); err != nil {
						t.Error(err)
						return
					}
					if sent++; sent%64 == 0 {
						time.Sleep(time.Millisecond)
					}
				}
			}
			if err := srv.Drain(sent, 5*time.Second); err != nil {
				t.Log(err) // loss tolerated — partial flush is the point
			}
		},
	}
	if err := run(ctx, cfg); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"listening for NetFlow on udp",
		"udp capture stopped",
		"Recommended tiers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunUDPListenFor covers the -for path: the capture window closes on
// its own without a signal.
func TestRunUDPListenFor(t *testing.T) {
	ds, err := traces.EUISP(9)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Streams on disk supply the demand; the UDP window just opens and
	// closes empty — pricing still runs (partial ≥ files-only).
	dir := writeTraceDir(t, ds, streams, true)
	var buf bytes.Buffer
	cfg := runConfig{
		dir: dir, tiers: 3, workers: 1, model: "ced", alpha: 1.1,
		theta: 0.2, strategy: "profit-weighted",
		udp: "127.0.0.1:0", listenFor: 50 * time.Millisecond, out: &buf,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "Recommended tiers") {
		t.Errorf("no tier table after -for capture:\n%s", buf.String())
	}
}

// sanitizeName mirrors tracegen's filename sanitation for the test
// fixture (router names may contain spaces).
func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}
