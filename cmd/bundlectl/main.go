// Command bundlectl is the operator tool: it consumes a directory of raw
// NetFlow export streams (as written by tracegen, or by real collection
// infrastructure using the same format), rebuilds per-destination traffic
// demands through the de-duplicating collector, fits the demand/cost
// model at the configured blended rate, and prints the recommended
// pricing tiers with their profit-maximizing prices.
//
// Usage:
//
//	bundlectl -in /tmp/euisp -tiers 3 -model ced -strategy profit-weighted
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/geoip"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/parallel"
	"tieredpricing/internal/report"
	"tieredpricing/internal/topology"
	"tieredpricing/internal/traces"
)

func main() {
	in := flag.String("in", "", "trace directory from tracegen (required)")
	tiers := flag.Int("tiers", 3, "number of pricing tiers")
	model := flag.String("model", "ced", "demand model: ced or logit")
	alpha := flag.Float64("alpha", 1.1, "price sensitivity α")
	s0 := flag.Float64("s0", 0.2, "logit no-purchase share")
	theta := flag.Float64("theta", 0.2, "linear cost model base fraction θ")
	strategyName := flag.String("strategy", "profit-weighted",
		"bundling strategy (optimal, profit-weighted, cost-weighted, demand-weighted, cost division, index division)")
	truth := flag.String("truth", "", "optional ground-truth flows CSV (from tracegen) to verify the recovery against")
	workers := flag.Int("parallel", runtime.NumCPU(),
		"worker goroutines for ingesting router streams (the collector is concurrency-safe; 1 = serial)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "bundlectl: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *tiers, *workers, *model, *alpha, *s0, *theta, *strategyName, *truth); err != nil {
		fmt.Fprintln(os.Stderr, "bundlectl:", err)
		os.Exit(1)
	}
}

func run(dir string, tiers, workers int, model string, alpha, s0, theta float64, strategyName, truthPath string) error {
	meta, err := readMeta(filepath.Join(dir, "meta.txt"))
	if err != nil {
		return err
	}
	geoFile, err := os.Open(filepath.Join(dir, "geoip.csv"))
	if err != nil {
		return err
	}
	geo, err := geoip.ReadCSV(geoFile)
	geoFile.Close()
	if err != nil {
		return err
	}

	// Collect every router stream through the deduplicating collector.
	collector := netflow.NewCollector(traces.AggregateKey)
	streams, err := filepath.Glob(filepath.Join(dir, "*.nf5"))
	if err != nil {
		return err
	}
	if len(streams) == 0 {
		return fmt.Errorf("no .nf5 streams in %s", dir)
	}
	// Router streams are independent files and the collector is safe for
	// concurrent ingest (core routers export independently); dedup and the
	// accumulated aggregates are order-insensitive, so the fitted market is
	// identical for any worker count.
	if err := parallel.ForEach(context.Background(), len(streams), workers,
		func(_ context.Context, i int) error {
			return ingestFile(collector, streams[i])
		}); err != nil {
		return err
	}
	records, dups, dropped := collector.Stats()

	rv := &demandfit.Resolver{Geo: geo, DistanceRegions: meta.dataset == "euisp"}
	if meta.dataset == "internet2" {
		rv.Topo = topology.Internet2()
	}
	flows, skipped, err := demandfit.BuildFlows(collector.Aggregates(), rv, meta.duration)
	if err != nil {
		return err
	}

	var dm econ.Model
	switch model {
	case "ced":
		dm = econ.CED{Alpha: alpha}
	case "logit":
		dm = econ.Logit{Alpha: alpha, S0: s0}
	default:
		return fmt.Errorf("unknown demand model %q", model)
	}
	strategy, err := lookupStrategy(strategyName)
	if err != nil {
		return err
	}
	market, err := core.NewMarket(flows, dm, cost.Linear{Theta: theta}, meta.p0)
	if err != nil {
		return err
	}
	out, err := market.Run(strategy, tiers)
	if err != nil {
		return err
	}

	fmt.Printf("collected %d records (%d cross-router duplicates, %d unkeyed, %d unresolved) → %d flows\n",
		records, dups, dropped, skipped, len(flows))
	if truthPath != "" {
		if err := verifyRecovery(flows, truthPath); err != nil {
			return err
		}
	}
	fmt.Printf("market: model=%s blended=$%.2f γ=%.4g originalπ=%.0f maxπ=%.0f\n\n",
		dm.Name(), meta.p0, market.Gamma, market.OriginalProfit, market.MaxProfit)

	t := report.New(fmt.Sprintf("Recommended tiers (%s, %d bundles)", strategy.Name(), tiers),
		"tier", "price $/Mbps/mo", "flows", "demand Mbps", "mean distance mi")
	for b, block := range out.Partition {
		var demand, wdist float64
		for _, i := range block {
			demand += flows[i].Demand
			wdist += flows[i].Demand * flows[i].Distance
		}
		t.MustAddRow(report.I(b), report.F(out.Prices[b]), report.I(len(block)),
			report.F1(demand), report.F1(wdist/demand))
	}
	t.AddNote("profit $%.0f — capture %.1f%% of the tiered-pricing headroom",
		out.Profit, out.Capture*100)
	return t.WriteASCII(os.Stdout)
}

func ingestFile(c *netflow.Collector, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd := netflow.NewReader(bufio.NewReader(f))
	for {
		h, recs, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		c.Ingest(h, recs)
	}
}

func lookupStrategy(name string) (bundling.Strategy, error) {
	all := []bundling.Strategy{
		bundling.Optimal{}, bundling.ProfitWeighted{}, bundling.CostWeighted{},
		bundling.DemandWeighted{}, bundling.CostDivision{}, bundling.IndexDivision{},
		bundling.ClassAware{Inner: bundling.ProfitWeighted{}},
	}
	for _, s := range all {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// traceMeta is the subset of meta.txt bundlectl needs.
type traceMeta struct {
	dataset  string
	p0       float64
	duration float64
}

func readMeta(path string) (traceMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return traceMeta{}, err
	}
	defer f.Close()
	meta := traceMeta{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			continue
		}
		switch key {
		case "dataset":
			meta.dataset = value
		case "blended_rate":
			if meta.p0, err = strconv.ParseFloat(value, 64); err != nil {
				return traceMeta{}, fmt.Errorf("meta: blended_rate: %w", err)
			}
		case "duration_sec":
			if meta.duration, err = strconv.ParseFloat(value, 64); err != nil {
				return traceMeta{}, fmt.Errorf("meta: duration_sec: %w", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return traceMeta{}, err
	}
	if meta.dataset == "" || meta.p0 <= 0 || meta.duration <= 0 {
		return traceMeta{}, fmt.Errorf("meta: incomplete metadata in %s", path)
	}
	return meta, nil
}

// verifyRecovery compares the pipeline-recovered flows against the
// generator's ground truth by matching sorted (distance, demand)
// signatures and reporting the worst relative demand error.
func verifyRecovery(flows []econ.Flow, truthPath string) error {
	f, err := os.Open(truthPath)
	if err != nil {
		return err
	}
	truth, err := traces.ReadFlowsCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(truth) != len(flows) {
		return fmt.Errorf("recovery check: %d flows recovered, truth has %d", len(flows), len(truth))
	}
	type sig struct{ d, q float64 }
	a := make([]sig, len(flows))
	b := make([]sig, len(truth))
	for i := range flows {
		a[i] = sig{flows[i].Distance, flows[i].Demand}
		b[i] = sig{truth[i].Distance, truth[i].Demand}
	}
	less := func(s []sig) func(int, int) bool {
		return func(i, j int) bool {
			if s[i].d != s[j].d {
				return s[i].d < s[j].d
			}
			return s[i].q < s[j].q
		}
	}
	sort.Slice(a, less(a))
	sort.Slice(b, less(b))
	var worst float64
	for i := range a {
		if b[i].q > 0 {
			if rel := math.Abs(a[i].q-b[i].q) / b[i].q; rel > worst {
				worst = rel
			}
		}
	}
	fmt.Printf("recovery check vs %s: %d/%d flows matched, worst demand error %.4f%%\n",
		truthPath, len(a), len(b), worst*100)
	if worst > 0.02 {
		return fmt.Errorf("recovery check: worst demand error %.2f%% exceeds 2%%", worst*100)
	}
	return nil
}
