// Command bundlectl is the operator tool: it consumes NetFlow export
// streams — a directory of raw capture files (as written by tracegen, or
// by real collection infrastructure using the same format) and/or a live
// UDP export feed — rebuilds per-destination traffic demands through the
// de-duplicating collector, fits the demand/cost model at the configured
// blended rate, and prints the recommended pricing tiers with their
// profit-maximizing prices.
//
// Usage:
//
//	bundlectl -in /tmp/euisp -tiers 3 -model ced -strategy profit-weighted
//	bundlectl -in /tmp/euisp -udp 127.0.0.1:2055 -for 5m
//
// With -udp, SIGINT/SIGTERM stops the capture gracefully: the listener
// is drained and the tiers are computed from everything received so far
// (partial results are flushed, not discarded).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"syscall"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/geoip"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/parallel"
	"tieredpricing/internal/report"
	"tieredpricing/internal/topology"
	"tieredpricing/internal/traces"
)

// runConfig collects bundlectl's knobs; the flag set in main fills one.
type runConfig struct {
	dir      string
	tiers    int
	workers  int
	model    string
	alpha    float64
	s0       float64
	theta    float64
	strategy string
	truth    string

	udp       string        // UDP NetFlow listen address; empty disables
	listenFor time.Duration // stop UDP capture after this long; 0 = until signal

	// onListen, when set, is invoked with the live UDP listener once it
	// is bound (test hook: learn the ephemeral port and drive traffic).
	onListen func(*netflow.CollectorServer)
	out      io.Writer // defaults to os.Stdout
}

func main() {
	cfg := runConfig{out: os.Stdout}
	flag.StringVar(&cfg.dir, "in", "", "trace directory from tracegen (required)")
	flag.IntVar(&cfg.tiers, "tiers", 3, "number of pricing tiers")
	flag.StringVar(&cfg.model, "model", "ced", "demand model: ced or logit")
	flag.Float64Var(&cfg.alpha, "alpha", 1.1, "price sensitivity α")
	flag.Float64Var(&cfg.s0, "s0", 0.2, "logit no-purchase share")
	flag.Float64Var(&cfg.theta, "theta", 0.2, "linear cost model base fraction θ")
	flag.StringVar(&cfg.strategy, "strategy", "profit-weighted",
		"bundling strategy (optimal, profit-weighted, cost-weighted, demand-weighted, cost division, index division)")
	flag.StringVar(&cfg.truth, "truth", "", "optional ground-truth flows CSV (from tracegen) to verify the recovery against")
	flag.IntVar(&cfg.workers, "parallel", runtime.NumCPU(),
		"worker goroutines for ingesting router streams (the collector is concurrency-safe; 1 = serial)")
	flag.StringVar(&cfg.udp, "udp", "", "also capture live NetFlow over UDP at this address (e.g. 127.0.0.1:2055)")
	flag.DurationVar(&cfg.listenFor, "for", 0, "stop the UDP capture after this duration (0 = until SIGINT/SIGTERM)")
	flag.Parse()
	if cfg.dir == "" {
		fmt.Fprintln(os.Stderr, "bundlectl: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bundlectl:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg runConfig) error {
	out := cfg.out
	if out == nil {
		out = os.Stdout
	}
	meta, err := traces.ReadMetaFile(filepath.Join(cfg.dir, "meta.txt"))
	if err != nil {
		return err
	}
	geoFile, err := os.Open(filepath.Join(cfg.dir, "geoip.csv"))
	if err != nil {
		return err
	}
	geo, err := geoip.ReadCSV(geoFile)
	geoFile.Close()
	if err != nil {
		return err
	}

	// Collect every router stream through the deduplicating collector.
	collector := netflow.NewCollector(traces.AggregateKey)
	streams, err := filepath.Glob(filepath.Join(cfg.dir, "*.nf5"))
	if err != nil {
		return err
	}
	if len(streams) == 0 && cfg.udp == "" {
		return fmt.Errorf("no .nf5 streams in %s (and no -udp listener)", cfg.dir)
	}
	// Router streams are independent files and the collector is safe for
	// concurrent ingest (core routers export independently); dedup and the
	// accumulated aggregates are order-insensitive, so the fitted market is
	// identical for any worker count.
	if err := parallel.ForEach(ctx, len(streams), cfg.workers,
		func(_ context.Context, i int) error {
			return ingestFile(collector, streams[i])
		}); err != nil {
		if !errors.Is(err, context.Canceled) {
			return err
		}
		// Interrupted mid-capture: flush what we have rather than dying.
		fmt.Fprintln(out, "interrupted during file ingest — flushing partial results")
	}
	if cfg.udp != "" {
		if err := captureUDP(ctx, cfg, collector, out); err != nil {
			return err
		}
	}
	records, dups, dropped := collector.Stats()

	rv := &demandfit.Resolver{Geo: geo, DistanceRegions: meta.Dataset == "euisp"}
	if meta.Dataset == "internet2" {
		rv.Topo = topology.Internet2()
	}
	flows, skipped, err := demandfit.BuildFlows(collector.Aggregates(), rv, meta.DurationSec)
	if err != nil {
		return err
	}

	var dm econ.Model
	switch cfg.model {
	case "ced":
		dm = econ.CED{Alpha: cfg.alpha}
	case "logit":
		dm = econ.Logit{Alpha: cfg.alpha, S0: cfg.s0}
	default:
		return fmt.Errorf("unknown demand model %q", cfg.model)
	}
	strategy, err := bundling.ByName(cfg.strategy)
	if err != nil {
		return err
	}
	market, err := core.NewMarket(flows, dm, cost.Linear{Theta: cfg.theta}, meta.P0)
	if err != nil {
		return err
	}
	outcome, err := market.Run(strategy, cfg.tiers)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "collected %d records (%d cross-router duplicates, %d unkeyed, %d unresolved) → %d flows\n",
		records, dups, dropped, skipped, len(flows))
	if cfg.truth != "" {
		if err := verifyRecovery(out, flows, cfg.truth); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "market: model=%s blended=$%.2f γ=%.4g originalπ=%.0f maxπ=%.0f\n\n",
		dm.Name(), meta.P0, market.Gamma, market.OriginalProfit, market.MaxProfit)

	t := report.New(fmt.Sprintf("Recommended tiers (%s, %d bundles)", strategy.Name(), cfg.tiers),
		"tier", "price $/Mbps/mo", "flows", "demand Mbps", "mean distance mi")
	for b, block := range outcome.Partition {
		var demand, wdist float64
		for _, i := range block {
			demand += flows[i].Demand
			wdist += flows[i].Demand * flows[i].Distance
		}
		t.MustAddRow(report.I(b), report.F(outcome.Prices[b]), report.I(len(block)),
			report.F1(demand), report.F1(wdist/demand))
	}
	t.AddNote("profit $%.0f — capture %.1f%% of the tiered-pricing headroom",
		outcome.Profit, outcome.Capture*100)
	return t.WriteASCII(out)
}

// captureUDP listens for live NetFlow exports and feeds them into the
// collector until ctx is cancelled (SIGINT/SIGTERM) or -for elapses,
// then drains the listener so every received datagram is accounted
// before pricing runs. This is the same stop-ingest-then-price drain
// tierd performs on shutdown.
func captureUDP(ctx context.Context, cfg runConfig, collector *netflow.Collector, out io.Writer) error {
	srv, err := netflow.NewCollectorServer(cfg.udp, collector)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "listening for NetFlow on udp %s", srv.Addr())
	if cfg.listenFor > 0 {
		fmt.Fprintf(out, " for %v", cfg.listenFor)
	}
	fmt.Fprintln(out, " — SIGINT/SIGTERM stops the capture and prices what arrived")
	if cfg.onListen != nil {
		cfg.onListen(srv)
	}
	waitCtx := ctx
	if cfg.listenFor > 0 {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithTimeout(ctx, cfg.listenFor)
		defer cancel()
	}
	<-waitCtx.Done()
	srv.Close() // blocks until the receive loop has exited
	packets, bad := srv.Stats()
	fmt.Fprintf(out, "udp capture stopped: %d packets (%d bad)\n", packets, bad)
	return nil
}

func ingestFile(c *netflow.Collector, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd := netflow.NewReader(bufio.NewReader(f))
	for {
		h, recs, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		c.Ingest(h, recs)
	}
}

// verifyRecovery compares the pipeline-recovered flows against the
// generator's ground truth by matching sorted (distance, demand)
// signatures and reporting the worst relative demand error.
func verifyRecovery(out io.Writer, flows []econ.Flow, truthPath string) error {
	f, err := os.Open(truthPath)
	if err != nil {
		return err
	}
	truth, err := traces.ReadFlowsCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(truth) != len(flows) {
		return fmt.Errorf("recovery check: %d flows recovered, truth has %d", len(flows), len(truth))
	}
	type sig struct{ d, q float64 }
	a := make([]sig, len(flows))
	b := make([]sig, len(truth))
	for i := range flows {
		a[i] = sig{flows[i].Distance, flows[i].Demand}
		b[i] = sig{truth[i].Distance, truth[i].Demand}
	}
	less := func(s []sig) func(int, int) bool {
		return func(i, j int) bool {
			if s[i].d != s[j].d {
				return s[i].d < s[j].d
			}
			return s[i].q < s[j].q
		}
	}
	sort.Slice(a, less(a))
	sort.Slice(b, less(b))
	var worst float64
	for i := range a {
		if b[i].q > 0 {
			if rel := math.Abs(a[i].q-b[i].q) / b[i].q; rel > worst {
				worst = rel
			}
		}
	}
	fmt.Fprintf(out, "recovery check vs %s: %d/%d flows matched, worst demand error %.4f%%\n",
		truthPath, len(a), len(b), worst*100)
	if worst > 0.02 {
		return fmt.Errorf("recovery check: worst demand error %.2f%% exceeds 2%%", worst*100)
	}
	return nil
}
