package main

import (
	"os"
	"testing"
)

// impossiblePID is above the kernel's pid_max ceiling (4194304), so
// /proc/<pid> can never exist.
const impossiblePID = 1 << 31

func TestProcSamplerReadsSelf(t *testing.T) {
	p := newProcSampler(os.Getpid())
	p.sample()
	p.sample()
	got := p.result()
	if !got.Sampled {
		t.Fatal("sampling our own process reported not sampled")
	}
	if got.MaxRSSBytes <= 0 {
		t.Errorf("max RSS %d, want positive", got.MaxRSSBytes)
	}
	if got.CPUSeconds < 0 {
		t.Errorf("CPU delta %v, want non-negative", got.CPUSeconds)
	}
}

// TestProcSamplerTargetExitsMidRun: when the target becomes unreadable
// after sampling has started (it crashed or was killed mid-run), the
// partial window would under-report, so the sampler must discard it and
// report "not sampled" instead of misleading numbers.
func TestProcSamplerTargetExitsMidRun(t *testing.T) {
	p := newProcSampler(os.Getpid())
	p.sample()
	if !p.sampled {
		t.Fatal("first sample failed on our own process")
	}
	p.pid = impossiblePID // the target "exits"
	p.sample()
	if !p.lost {
		t.Fatal("mid-run disappearance not flagged")
	}
	got := p.result()
	if got.Sampled || got.MaxRSSBytes != 0 || got.CPUSeconds != 0 {
		t.Fatalf("lost target still reported data: %+v", got)
	}
	// Further failures stay quiet (the warning fires once) and further
	// results stay zeroed.
	p.sample()
	if got := p.result(); got.Sampled {
		t.Fatalf("lost target recovered spuriously: %+v", got)
	}
}

// TestProcSamplerNeverSampled: a bad PID from the start keeps the
// pre-existing behavior — never sampled, not "lost".
func TestProcSamplerNeverSampled(t *testing.T) {
	p := newProcSampler(impossiblePID)
	p.sample()
	if p.lost {
		t.Fatal("never-sampled target flagged as lost mid-run")
	}
	if got := p.result(); got.Sampled {
		t.Fatalf("never-sampled target reported data: %+v", got)
	}
}

func TestProcSamplerDisabled(t *testing.T) {
	if p := newProcSampler(0); p != nil {
		t.Fatal("pid 0 should disable sampling")
	}
}
