package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tieredpricing/internal/hist"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/sloreport"
)

// Options configures one load-test run.
type Options struct {
	// Target is the tierd base URL (e.g. http://127.0.0.1:8080).
	Target string
	// Datagrams are the pre-encoded NetFlow export packets of the
	// workload trace; Pairs are the src>dst endpoints its records quote.
	// Both come from LoadStream.
	Datagrams [][]byte
	Pairs     []Pair

	QPS      float64
	Duration time.Duration
	Workers  int
	Timeout  time.Duration // per-request; 0 = 5s

	// NetflowAddr, when set, receives the trace's datagrams over UDP at
	// NetflowPPS for the whole measured window, cycling through the
	// trace, so reprice churn and quote serving are measured together.
	// NetflowPPS 0 disables the push; a negative rate pushes unthrottled
	// (ingest-throughput profiling — read the achieved rate back from
	// the report).
	NetflowAddr string
	NetflowPPS  float64

	// Warmup replays the full trace into NetflowAddr and blocks until
	// the daemon serves a 200 quote for every pair in the mix (bounded
	// by WarmupTimeout), so the measured window starts from a priced
	// steady state instead of counting warm-up 503s as errors.
	Warmup        bool
	WarmupTimeout time.Duration // 0 = 30s

	// Tenants switches the run into fleet mode: the quote mix targets
	// each tenant's /v1/t/{id}/quote endpoint using its own Pairs (from
	// PartitionStream, which also stamps Datagrams' engine IDs), and the
	// report carries per-tenant rows. Empty = single-tenant legacy paths.
	Tenants []TenantMix

	// Seed orders the quote mix deterministically.
	Seed int64
	// PID, when non-zero, samples that process's RSS and CPU from /proc
	// over the measured window.
	PID int

	Profile string
}

// Pair is one quotable src>dst endpoint pair from the trace.
type Pair struct{ Src, Dst string }

// LoadStream decodes a concatenated NetFlow v5 export stream (the
// tracegen -stdout format) into per-export datagrams for UDP replay and
// the deduplicated endpoint pairs its records quote, in order of first
// appearance.
func LoadStream(r io.Reader) (datagrams [][]byte, pairs []Pair, err error) {
	rd := netflow.NewReader(r)
	seen := map[Pair]bool{}
	for {
		h, recs, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		pkt, err := netflow.EncodePacket(h, recs)
		if err != nil {
			return nil, nil, err
		}
		datagrams = append(datagrams, pkt)
		for _, rec := range recs {
			p := Pair{Src: rec.SrcAddr.String(), Dst: rec.DstAddr.String()}
			if !seen[p] {
				seen[p] = true
				pairs = append(pairs, p)
			}
		}
	}
	if len(datagrams) == 0 {
		return nil, nil, errors.New("loadgen: stream holds no export packets")
	}
	return datagrams, pairs, nil
}

// worker accumulates one goroutine's observations; merged after the run
// so recording stays lock-free. In fleet mode each worker also keeps a
// sub-accumulator per tenant, so the per-tenant rows come from the same
// lock-free merge as the run totals.
type worker struct {
	hist                              *hist.Histogram
	requests, ok, errs, misses, stale uint64
	tenants                           []*worker
}

// observe records one finished request. latNs is measured from the
// scheduled send time; it only lands in the histogram when the request
// completed at the HTTP layer (transport failures have no meaningful
// service latency).
func (wk *worker) observe(latNs int64, status int, isStale bool, err error) {
	wk.requests++
	if err != nil {
		wk.errs++
		return
	}
	wk.hist.Record(latNs)
	switch {
	case status == http.StatusOK:
		wk.ok++
		if isStale {
			wk.stale++
		}
	case status == http.StatusNotFound:
		wk.errs++
		wk.misses++
	default:
		wk.errs++
	}
}

// quoteTarget is one URL of the quote mix and the tenant it belongs to
// (-1 outside fleet mode).
type quoteTarget struct {
	url    string
	tenant int
}

// Run executes the load test: an open-loop constant-rate schedule
// (vegeta-style — send times are fixed up front; a slow server makes
// latencies grow, it does not make the generator slow down) against the
// quote endpoint, with an optional concurrent NetFlow push, /proc
// resource sampling, and an SLO report at the end.
func Run(ctx context.Context, opts Options) (*sloreport.Report, error) {
	if opts.Target == "" {
		return nil, errors.New("loadgen: no target")
	}
	if opts.QPS <= 0 || opts.Duration <= 0 {
		return nil, errors.New("loadgen: qps and duration must be positive")
	}
	if len(opts.Tenants) == 0 && len(opts.Pairs) == 0 {
		return nil, errors.New("loadgen: no endpoint pairs to quote")
	}
	if opts.Workers <= 0 {
		opts.Workers = 16
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Profile == "" {
		opts.Profile = "adhoc"
	}

	client := &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Workers * 2,
			MaxIdleConnsPerHost: opts.Workers * 2,
			DisableCompression:  true,
		},
	}
	defer client.CloseIdleConnections()

	// Pre-build the quote mix in a seed-shuffled order; request i takes
	// targets[i % len], so the mix is the same multiset every run. Fleet
	// mode interleaves every tenant's pairs on its own scoped endpoint.
	var targets []quoteTarget
	if len(opts.Tenants) > 0 {
		for ti, tn := range opts.Tenants {
			if len(tn.Pairs) == 0 {
				return nil, fmt.Errorf("loadgen: tenant %q has no quotable pairs", tn.ID)
			}
			for _, p := range tn.Pairs {
				targets = append(targets, quoteTarget{
					url:    opts.Target + "/v1/t/" + tn.ID + "/quote?src=" + p.Src + "&dst=" + p.Dst,
					tenant: ti,
				})
			}
		}
	} else {
		for _, p := range opts.Pairs {
			targets = append(targets, quoteTarget{
				url:    opts.Target + "/v1/quote?src=" + p.Src + "&dst=" + p.Dst,
				tenant: -1,
			})
		}
	}
	rand.New(rand.NewSource(opts.Seed)).Shuffle(len(targets), func(i, j int) {
		targets[i], targets[j] = targets[j], targets[i]
	})

	if opts.Warmup {
		if err := warmup(ctx, client, opts, targets); err != nil {
			return nil, err
		}
	}

	// Stamp the daemon's build identity into the report. /healthz carries
	// X-Tierd-Build on every response, including warming-up 503s; a
	// transport failure just leaves the field empty.
	build := fetchBuild(ctx, client, opts.Target)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	sampler := newProcSampler(opts.PID)
	var samplerWG sync.WaitGroup
	if sampler != nil {
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			sampler.run(runCtx, 100*time.Millisecond)
		}()
	}

	var (
		nfSent uint64
		nfErr  error
		nfWG   sync.WaitGroup
	)
	if opts.NetflowAddr != "" && opts.NetflowPPS != 0 {
		nfWG.Add(1)
		go func() {
			defer nfWG.Done()
			nfSent, nfErr = pushNetflow(runCtx, opts.NetflowAddr, opts.Datagrams, opts.NetflowPPS)
		}()
	}

	// Open-loop schedule: request i is due at start + i/QPS. The channel
	// buffer absorbs jitter; when the server (or the worker pool) falls
	// behind, the due times keep their fixed cadence and the backlog is
	// charged to latency — no coordinated omission.
	total := int(opts.QPS * opts.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	step := time.Duration(float64(time.Second) / opts.QPS)
	due := make(chan time.Time, 1024)

	workers := make([]*worker, opts.Workers)
	var next atomic.Uint64
	var wg sync.WaitGroup
	for w := range workers {
		wk := &worker{hist: hist.New()}
		if n := len(opts.Tenants); n > 0 {
			wk.tenants = make([]*worker, n)
			for i := range wk.tenants {
				wk.tenants[i] = &worker{hist: hist.New()}
			}
		}
		workers[w] = wk
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			for sched := range due {
				tgt := targets[int(next.Add(1)-1)%len(targets)]
				status, isStale, err := fire(runCtx, client, tgt.url)
				latNs := int64(time.Since(sched))
				wk.observe(latNs, status, isStale, err)
				if tgt.tenant >= 0 {
					wk.tenants[tgt.tenant].observe(latNs, status, isStale, err)
				}
			}
		}(workers[w])
	}

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
sched:
	for i := 0; i < total; i++ {
		at := start.Add(time.Duration(i) * step)
		if wait := time.Until(at); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break sched
			}
		}
		select {
		case due <- at:
		case <-ctx.Done():
			break sched
		}
	}
	close(due)
	wg.Wait()
	elapsed := time.Since(start)
	cancel()
	nfWG.Wait()
	samplerWG.Wait()
	if nfErr != nil {
		return nil, fmt.Errorf("loadgen: netflow push: %w", nfErr)
	}

	merged := hist.New()
	report := &sloreport.Report{
		Profile:     opts.Profile,
		Seed:        opts.Seed,
		Build:       build,
		TargetQPS:   opts.QPS,
		DurationSec: elapsed.Seconds(),
	}
	for _, wk := range workers {
		if err := merged.Merge(wk.hist); err != nil {
			return nil, err
		}
		report.Requests += wk.requests
		report.OK += wk.ok
		report.Errors += wk.errs
		report.Misses += wk.misses
		report.Stale += wk.stale
	}
	if report.Requests == 0 {
		return nil, errors.New("loadgen: no requests completed")
	}
	report.AchievedQPS = float64(report.Requests) / elapsed.Seconds()
	report.ErrorRate = float64(report.Errors) / float64(report.Requests)
	report.StaleRate = float64(report.Stale) / float64(report.Requests)
	report.Latency = latencyFrom(merged)
	if n := len(opts.Tenants); n > 0 {
		report.Tenants = make([]sloreport.Tenant, n)
		for ti := range opts.Tenants {
			row := &report.Tenants[ti]
			row.ID = opts.Tenants[ti].ID
			th := hist.New()
			for _, wk := range workers {
				sub := wk.tenants[ti]
				if err := th.Merge(sub.hist); err != nil {
					return nil, err
				}
				row.Requests += sub.requests
				row.OK += sub.ok
				row.Errors += sub.errs
				row.Misses += sub.misses
				row.Stale += sub.stale
			}
			if row.Requests > 0 {
				row.ErrorRate = float64(row.Errors) / float64(row.Requests)
				row.StaleRate = float64(row.Stale) / float64(row.Requests)
			}
			row.Latency = latencyFrom(th)
		}
	}
	report.Netflow = sloreport.Netflow{
		Datagrams:   nfSent,
		TargetPPS:   opts.NetflowPPS,
		AchievedPPS: float64(nfSent) / elapsed.Seconds(),
	}
	if sampler != nil {
		report.Proc = sampler.result()
	}
	if err := report.Validate(); err != nil {
		return nil, err
	}
	return report, nil
}

// latencyFrom snapshots a merged histogram into report form.
func latencyFrom(h *hist.Histogram) sloreport.Latency {
	return sloreport.Latency{
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		P999Ns: h.Quantile(0.999),
		MaxNs:  h.Max(),
		MeanNs: h.Mean(),
	}
}

// fetchBuild reads the daemon's build identity from /healthz's
// X-Tierd-Build header. Best effort: any failure returns "".
func fetchBuild(ctx context.Context, client *http.Client, target string) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/healthz", nil)
	if err != nil {
		return ""
	}
	resp, err := client.Do(req)
	if err != nil {
		return ""
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.Header.Get("X-Tierd-Build")
}

// fire issues one quote request and drains the body so the connection is
// reused. isStale reports the X-Tierd-Stale degraded-mode tag.
func fire(ctx context.Context, client *http.Client, url string) (status int, isStale bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Tierd-Stale") == "true", nil
}

// pushNetflow sends the trace's datagrams to addr at a constant packet
// rate, cycling through the trace until ctx is cancelled. Re-sent
// datagrams are idempotent: the window's cross-router dedup suppresses
// them, so the push exercises ingest and reprice churn without inflating
// demand. pps <= 0 pushes unthrottled — as fast as the socket accepts —
// for ingest-throughput profiling against a sharded collector; the
// achieved rate lands in the report's netflow section.
func pushNetflow(ctx context.Context, addr string, datagrams [][]byte, pps float64) (sent uint64, err error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if pps <= 0 {
		for i := 0; ; i++ {
			// Poll for cancellation between bursts, not every datagram.
			if i%256 == 0 {
				select {
				case <-ctx.Done():
					return sent, nil
				default:
				}
			}
			if _, err := conn.Write(datagrams[i%len(datagrams)]); err != nil {
				return sent, err
			}
			sent++
		}
	}
	ticker := time.NewTicker(time.Duration(float64(time.Second) / pps))
	defer ticker.Stop()
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return sent, nil
		case <-ticker.C:
			if _, err := conn.Write(datagrams[i%len(datagrams)]); err != nil {
				return sent, err
			}
			sent++
		}
	}
}

// warmup replays the whole trace into the ingest path and waits until
// every pair in the quote mix is priced. The daemon picks up re-sent
// data only at its next re-price, so the loop replays, probes, and backs
// off until the deadline.
func warmup(ctx context.Context, client *http.Client, opts Options, targets []quoteTarget) error {
	if opts.NetflowAddr == "" {
		return errors.New("loadgen: -warmup needs a netflow address to replay into")
	}
	timeout := opts.WarmupTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	conn, err := net.Dial("udp", opts.NetflowAddr)
	if err != nil {
		return err
	}
	defer conn.Close()

	missing := len(targets)
	for attempt := 0; ; attempt++ {
		// Replay the full trace; pacing keeps the loopback socket buffer
		// from shedding most of it.
		for i, d := range opts.Datagrams {
			if _, err := conn.Write(d); err != nil {
				return err
			}
			if i%64 == 63 {
				time.Sleep(time.Millisecond)
			}
		}
		// Give the daemon a chance to re-price, then probe the mix.
		for time.Now().Before(deadline) {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			missing = 0
			for _, tgt := range targets {
				status, _, err := fire(ctx, client, tgt.url)
				if err != nil || status != http.StatusOK {
					missing++
				}
			}
			if missing == 0 {
				return nil
			}
			time.Sleep(200 * time.Millisecond)
			if attempt == 0 {
				break // early re-replay once, in case the first burst was shed
			}
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("loadgen: warm-up deadline: %d of %d pairs still unpriced", missing, len(targets))
		}
	}
}
