package main

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tieredpricing/internal/netflow"
)

// TenantMix is one tenant's share of a fleet-mode run: the export
// datagrams dealt to it are stamped with its engine ID so the fleet's
// registry routes them there, and its quote mix targets
// /v1/t/{ID}/quote with the pairs those datagrams carried.
type TenantMix struct {
	ID     string
	Engine uint8
	// Pairs are the tenant's quotable endpoint pairs, filled by
	// PartitionStream in first-appearance order, deduplicated per tenant.
	Pairs []Pair
}

// ParseTenants parses the -tenants flag: comma-separated id=engine
// pairs, e.g. "net-a=1,net-b=2,net-c=3". Engine IDs are the NetFlow v5
// header engine IDs a fleet tierd's router table keys on; they and the
// tenant IDs must be distinct.
func ParseTenants(spec string) ([]TenantMix, error) {
	parts := strings.Split(spec, ",")
	tenants := make([]TenantMix, 0, len(parts))
	ids := make(map[string]bool, len(parts))
	engines := make(map[uint8]bool, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		id, eng, ok := strings.Cut(part, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("loadgen: tenant %q: want id=engine", part)
		}
		n, err := strconv.ParseUint(eng, 10, 8)
		if err != nil {
			return nil, fmt.Errorf("loadgen: tenant %q: engine ID must be 0..255: %v", part, err)
		}
		if ids[id] {
			return nil, fmt.Errorf("loadgen: duplicate tenant %q", id)
		}
		if engines[uint8(n)] {
			return nil, fmt.Errorf("loadgen: tenant %q: engine ID %d already assigned", id, n)
		}
		ids[id] = true
		engines[uint8(n)] = true
		tenants = append(tenants, TenantMix{ID: id, Engine: uint8(n)})
	}
	return tenants, nil
}

// PartitionStream is LoadStream for fleet mode: it deals the stream's
// export datagrams round-robin across the tenants, rewrites each
// packet's header engine ID to its tenant's (tracegen stamps engine 0
// everywhere, which a fleet routes to the default tenant), and collects
// each tenant's quotable pairs from the records dealt to it. Pair
// ownership follows the deal — a pair is only quotable on the tenant
// whose window actually priced its flows — so the returned mix is
// consistent with how a fleet tierd will route the datagrams.
func PartitionStream(r io.Reader, tenants []TenantMix) (datagrams [][]byte, mix []TenantMix, err error) {
	if len(tenants) == 0 {
		return nil, nil, errors.New("loadgen: no tenants to partition across")
	}
	mix = make([]TenantMix, len(tenants))
	copy(mix, tenants)
	seen := make([]map[Pair]bool, len(mix))
	for i := range seen {
		seen[i] = map[Pair]bool{}
	}
	rd := netflow.NewReader(r)
	for i := 0; ; i++ {
		h, recs, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		k := i % len(mix)
		h.EngineID = mix[k].Engine
		pkt, err := netflow.EncodePacket(h, recs)
		if err != nil {
			return nil, nil, err
		}
		datagrams = append(datagrams, pkt)
		for _, rec := range recs {
			p := Pair{Src: rec.SrcAddr.String(), Dst: rec.DstAddr.String()}
			if !seen[k][p] {
				seen[k][p] = true
				mix[k].Pairs = append(mix[k].Pairs, p)
			}
		}
	}
	if len(datagrams) == 0 {
		return nil, nil, errors.New("loadgen: stream holds no export packets")
	}
	for _, tn := range mix {
		if len(tn.Pairs) == 0 {
			return nil, nil, fmt.Errorf("loadgen: tenant %q drew no quotable pairs: stream too small for %d-way partition",
				tn.ID, len(mix))
		}
	}
	return datagrams, mix, nil
}
