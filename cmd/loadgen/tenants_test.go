package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/server"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/tenant"
	"tieredpricing/internal/traces"
)

func TestParseTenants(t *testing.T) {
	mix, err := ParseTenants("net-a=1, net-b=2,net-c=255")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantMix{{ID: "net-a", Engine: 1}, {ID: "net-b", Engine: 2}, {ID: "net-c", Engine: 255}}
	if len(mix) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(mix), len(want))
	}
	for i := range want {
		if mix[i].ID != want[i].ID || mix[i].Engine != want[i].Engine {
			t.Errorf("tenant %d: %+v, want %+v", i, mix[i], want[i])
		}
	}

	for _, bad := range []string{
		"",                // no id=engine at all
		"net-a",           // missing engine
		"=1",              // empty id
		"net-a=256",       // engine out of uint8 range
		"net-a=x",         // non-numeric engine
		"net-a=1,net-a=2", // duplicate id
		"net-a=1,net-b=1", // duplicate engine
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestPartitionStream(t *testing.T) {
	// Two packets (makeStream flushes all four records into one export
	// per 30-record page; force two packets by concatenating the stream
	// with itself).
	one := makeStream(t)
	twoPackets := append(append([]byte{}, one...), one...)

	tenants := []TenantMix{{ID: "net-a", Engine: 7}, {ID: "net-b", Engine: 9}}
	datagrams, mix, err := PartitionStream(bytes.NewReader(twoPackets), tenants)
	if err != nil {
		t.Fatal(err)
	}
	if len(datagrams) != 2 {
		t.Fatalf("%d datagrams, want 2", len(datagrams))
	}
	// The deal is round-robin and the engine stamp must match the owner.
	for i, d := range datagrams {
		h, _, err := netflow.DecodePacket(d)
		if err != nil {
			t.Fatalf("datagram %d does not decode: %v", i, err)
		}
		if want := tenants[i%2].Engine; h.EngineID != want {
			t.Errorf("datagram %d: engine %d, want %d", i, h.EngineID, want)
		}
	}
	// Identical packets dealt to both tenants: each owns the same pairs.
	for i, tn := range mix {
		if len(tn.Pairs) != 3 {
			t.Errorf("tenant %s: %d pairs, want 3 (deduplicated)", tn.ID, len(tn.Pairs))
		}
		if tn.ID != tenants[i].ID || tn.Engine != tenants[i].Engine {
			t.Errorf("mix %d: %+v does not preserve %+v", i, tn, tenants[i])
		}
	}
	// The input slice must not be mutated (Pairs filled on the copy).
	if tenants[0].Pairs != nil {
		t.Error("PartitionStream mutated its input")
	}

	// One packet across two tenants starves the second.
	if _, _, err := PartitionStream(bytes.NewReader(one), tenants); err == nil {
		t.Error("starved tenant accepted")
	}
	if _, _, err := PartitionStream(bytes.NewReader(nil), tenants); err == nil {
		t.Error("empty stream accepted")
	}
	if _, _, err := PartitionStream(bytes.NewReader(one), nil); err == nil {
		t.Error("no tenants accepted")
	}
}

// TestLoadgenFleetEndToEnd drives a two-tenant in-process fleet (two
// window→repricer engines behind a tenant registry and one UDP
// collector, the same chain cmd/tierd's fleet mode wires) and checks
// the report's per-tenant rows: they partition the run, carry populated
// monotone latency, and round-trip through the schema validator.
func TestLoadgenFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load test")
	}
	ds, err := traces.EUISP(91)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	mixIn := []TenantMix{{ID: "net-a", Engine: 1}, {ID: "net-b", Engine: 2}}
	datagrams, mix, err := PartitionStream(bytes.NewReader(concatStreams(t, streams)), mixIn)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		tenants    []*tenant.Tenant
		srvTenants []*server.Tenant
	)
	for _, tm := range mix {
		w, err := stream.NewWindow(traces.AggregateKey, time.Hour, 4)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := stream.NewRepricer(stream.Config{
			Window:      w,
			Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
			Demand:      econ.CED{Alpha: 1.1},
			Cost:        cost.Linear{Theta: 0.2},
			P0:          ds.P0,
			Strategy:    bundling.ProfitWeighted{},
			Tiers:       3,
			DurationSec: ds.DurationSec,
		})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			rp.Run(ctx, 250*time.Millisecond, nil)
		}()
		t.Cleanup(func() { cancel(); <-done })
		tenants = append(tenants, &tenant.Tenant{
			Spec:   tenant.Spec{ID: tm.ID, Routers: []uint8{tm.Engine}},
			Window: w,
		})
		srvTenants = append(srvTenants, &server.Tenant{ID: tm.ID, Snapshots: rp})
	}
	reg, err := tenant.NewRegistry(tenants, mix[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	collector, err := netflow.NewCollectorServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	srv, err := server.New(server.Config{Tenants: srvTenants, DefaultTenant: mix[0].ID})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const targetQPS = 150.0
	rep, err := Run(ctx, Options{
		Target:        ts.URL,
		Datagrams:     datagrams,
		QPS:           targetQPS,
		Duration:      2 * time.Second,
		Workers:       8,
		NetflowAddr:   collector.Addr(),
		NetflowPPS:    100,
		Warmup:        true,
		WarmupTimeout: 60 * time.Second,
		Tenants:       mix,
		Seed:          5,
		Profile:       "fleet-e2e",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Validate() checks the fleet invariants (rows partition the run,
	// per-tenant quantiles monotone); re-run it explicitly so a schema
	// regression fails here, not only at ReadFile time.
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("%d tenant rows, want 2", len(rep.Tenants))
	}
	if rep.Errors != 0 {
		t.Errorf("error rate %.4f (%d errors, %d misses) on a healthy fleet",
			rep.ErrorRate, rep.Errors, rep.Misses)
	}
	for i, row := range rep.Tenants {
		if row.ID != mix[i].ID {
			t.Errorf("row %d: id %q, want %q (mix order preserved)", i, row.ID, mix[i].ID)
		}
		if row.Requests == 0 {
			t.Errorf("tenant %s: no requests in a 2s interleaved mix", row.ID)
		}
		if row.Errors != 0 {
			t.Errorf("tenant %s: %d errors", row.ID, row.Errors)
		}
		if row.Requests > 0 && row.Latency.P50Ns <= 0 {
			t.Errorf("tenant %s: latency not recorded", row.ID)
		}
	}
}
