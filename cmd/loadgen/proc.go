package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tieredpricing/internal/sloreport"
)

// clockTicksPerSec is the kernel's USER_HZ, the unit of /proc/<pid>/stat
// CPU accounting. It has been 100 on every Linux ABI since 2.6; loadgen
// reads it as a constant rather than shelling out to getconf.
const clockTicksPerSec = 100

// procSampler polls /proc/<pid> for resident set size and cumulative CPU
// time, keeping the peak RSS and the CPU delta across the measured
// window. All methods degrade to "not sampled" when /proc is unreadable
// (wrong PID, non-Linux), never failing the run.
type procSampler struct {
	pid      int
	pageSize int64

	sampled  bool
	lost     bool // target exited mid-run; the partial window is discarded
	maxRSS   int64
	firstCPU float64
	lastCPU  float64
}

// newProcSampler returns nil when pid is zero (sampling disabled).
func newProcSampler(pid int) *procSampler {
	if pid == 0 {
		return nil
	}
	return &procSampler{pid: pid, pageSize: int64(os.Getpagesize())}
}

// run samples every interval until ctx is cancelled, then takes one
// final sample so short runs still get a CPU delta.
func (p *procSampler) run(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	p.sample()
	for {
		select {
		case <-ctx.Done():
			p.sample()
			return
		case <-ticker.C:
			p.sample()
		}
	}
}

func (p *procSampler) sample() {
	rss, err := readRSS(p.pid, p.pageSize)
	if err != nil {
		p.noteFailure(err)
		return
	}
	cpu, err := readCPUSeconds(p.pid)
	if err != nil {
		p.noteFailure(err)
		return
	}
	if !p.sampled {
		p.firstCPU = cpu
		p.sampled = true
	}
	if rss > p.maxRSS {
		p.maxRSS = rss
	}
	p.lastCPU = cpu
}

// noteFailure handles a sample that failed after sampling had started:
// the target exited (or /proc became unreadable) mid-run, so the
// partial window would under-report CPU and RSS. Warn once and discard
// rather than publish misleading numbers. Failures before the first
// successful sample keep the pre-existing "never sampled" behavior.
func (p *procSampler) noteFailure(err error) {
	if !p.sampled || p.lost {
		return
	}
	p.lost = true
	fmt.Fprintf(os.Stderr, "loadgen: warning: target pid %d unreadable mid-run (%v); dropping proc sample\n", p.pid, err)
}

// result summarizes the window; call only after run has returned.
func (p *procSampler) result() sloreport.Proc {
	if p.lost {
		return sloreport.Proc{}
	}
	return sloreport.Proc{
		Sampled:     p.sampled,
		MaxRSSBytes: p.maxRSS,
		CPUSeconds:  p.lastCPU - p.firstCPU,
	}
}

// readRSS reads resident pages from /proc/<pid>/statm (second field).
func readRSS(pid int, pageSize int64) (int64, error) {
	b, err := os.ReadFile(fmt.Sprintf("/proc/%d/statm", pid))
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0, fmt.Errorf("statm: %d fields", len(fields))
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, err
	}
	return pages * pageSize, nil
}

// readCPUSeconds reads utime+stime from /proc/<pid>/stat. The comm field
// may contain spaces and parentheses, so parsing starts after the last
// ')': utime and stime are overall fields 14 and 15 (1-based), i.e.
// fields 11 and 12 of the remainder.
func readCPUSeconds(pid int) (float64, error) {
	b, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return 0, err
	}
	s := string(b)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0, fmt.Errorf("stat: no comm field")
	}
	fields := strings.Fields(s[i+1:])
	if len(fields) < 13 {
		return 0, fmt.Errorf("stat: %d fields after comm", len(fields))
	}
	utime, err := strconv.ParseUint(fields[11], 10, 64)
	if err != nil {
		return 0, err
	}
	stime, err := strconv.ParseUint(fields[12], 10, 64)
	if err != nil {
		return 0, err
	}
	return float64(utime+stime) / clockTicksPerSec, nil
}
