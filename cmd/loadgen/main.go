// Command loadgen is the closed-loop load-test harness for tierd: an
// open-loop (vegeta-style) constant-rate generator that replays a
// synthetic trace's quote mix against a live daemon over HTTP while
// simultaneously pushing the same trace's NetFlow datagrams at its
// ingest port, so quote serving is measured under reprice churn — the
// regime the paper's online deployment actually runs in.
//
// Latency is recorded per request from its *scheduled* send time into an
// HDR-style histogram (internal/hist), so a saturated daemon shows up as
// tail growth rather than being hidden by generator back-pressure
// (no coordinated omission). The run ends with a machine-readable SLO
// report (internal/sloreport): p50/p90/p99/p999 quote latency, error and
// stale rates, achieved-vs-target QPS, NetFlow push rate, and the
// daemon's peak RSS and CPU time sampled from /proc.
//
// Quickstart against a locally running tierd:
//
//	tracegen -dataset euisp -seed 91 -out /tmp/trace -stdout > /tmp/trace.nf
//	tierd -trace /tmp/trace -udp 127.0.0.1:2055 -reprice 2s &
//	loadgen -target http://127.0.0.1:8080 -stream /tmp/trace.nf \
//	        -netflow 127.0.0.1:2055 -qps 1000 -duration 30s -warmup \
//	        -pid $(pgrep tierd) -report slo.json
//
// `benchjson slo slo.json` converts the report into BENCH_*.json rows;
// `./ci.sh slo` wires the whole loop into the regression gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		target  = flag.String("target", "", "tierd base URL (required, e.g. http://127.0.0.1:8080)")
		stream  = flag.String("stream", "", "NetFlow export stream file, the tracegen -stdout format (required)")
		qps     = flag.Float64("qps", 400, "target request rate against /v1/quote")
		dur     = flag.Duration("duration", 10*time.Second, "measured window length")
		workers = flag.Int("workers", 16, "concurrent request workers")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request timeout")

		netflowAddr = flag.String("netflow", "", "UDP address to push the trace's datagrams at during the run (empty disables)")
		netflowPPS  = flag.Float64("netflow-pps", 200, "NetFlow datagram push rate (0 = none, negative = unthrottled)")

		warmup        = flag.Bool("warmup", false, "replay the trace and wait until every pair quotes 200 before measuring")
		warmupTimeout = flag.Duration("warmup-timeout", 30*time.Second, "warm-up deadline")

		tenants = flag.String("tenants", "", "fleet mode: comma-separated tenant=engineID pairs (e.g. net-a=1,net-b=2); deals the stream round-robin across tenants, stamps engine IDs for fleet routing, quotes /v1/t/{tenant}/quote, and adds per-tenant report rows")

		hupPID   = flag.Int("hup-pid", 0, "reload-under-load profile: send SIGHUP to this tierd PID every -hup-every during the run (0 disables)")
		hupEvery = flag.Duration("hup-every", 2*time.Second, "SIGHUP interval for -hup-pid")

		seed    = flag.Int64("seed", 1, "quote-mix shuffle seed")
		pid     = flag.Int("pid", 0, "tierd PID for /proc RSS/CPU sampling (0 disables)")
		profile = flag.String("profile", "adhoc", "profile name recorded in the report")
		report  = flag.String("report", "", "report output path (empty writes JSON to stdout)")
	)
	flag.Parse()
	if *target == "" || *stream == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -target and -stream are required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*stream)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	var (
		datagrams [][]byte
		pairs     []Pair
		mix       []TenantMix
	)
	if *tenants != "" {
		tms, err := ParseTenants(*tenants)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		datagrams, mix, err = PartitionStream(f, tms)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, tn := range mix {
			fmt.Fprintf(os.Stderr, "loadgen: tenant %s (engine %d): %d quotable pairs\n",
				tn.ID, tn.Engine, len(tn.Pairs))
		}
		fmt.Fprintf(os.Stderr, "loadgen: %d datagrams across %d tenants, %s at %.0f qps\n",
			len(datagrams), len(mix), *dur, *qps)
	} else {
		datagrams, pairs, err = LoadStream(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: %d datagrams, %d quotable pairs, %s at %.0f qps\n",
			len(datagrams), len(pairs), *dur, *qps)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Reload-under-load: hammer the daemon's SIGHUP hot-reload path for
	// the whole run so the latency histogram and error rate measure
	// quote serving *across* config swaps, not between them.
	if *hupPID > 0 && *hupEvery > 0 {
		go func() {
			ticker := time.NewTicker(*hupEvery)
			defer ticker.Stop()
			sent := 0
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := syscall.Kill(*hupPID, syscall.SIGHUP); err != nil {
						fmt.Fprintln(os.Stderr, "loadgen: hup:", err)
						return
					}
					sent++
					fmt.Fprintf(os.Stderr, "loadgen: SIGHUP %d -> pid %d\n", sent, *hupPID)
				}
			}
		}()
	}

	rep, err := Run(ctx, Options{
		Target:        *target,
		Datagrams:     datagrams,
		Pairs:         pairs,
		QPS:           *qps,
		Duration:      *dur,
		Workers:       *workers,
		Timeout:       *timeout,
		NetflowAddr:   *netflowAddr,
		NetflowPPS:    *netflowPPS,
		Warmup:        *warmup,
		WarmupTimeout: *warmupTimeout,
		Tenants:       mix,
		Seed:          *seed,
		PID:           *pid,
		Profile:       *profile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr,
		"loadgen: %d requests, %.1f/%.1f qps achieved/target, err %.4f, stale %.4f, p50 %s p99 %s p999 %s\n",
		rep.Requests, rep.AchievedQPS, rep.TargetQPS, rep.ErrorRate, rep.StaleRate,
		time.Duration(rep.Latency.P50Ns), time.Duration(rep.Latency.P99Ns), time.Duration(rep.Latency.P999Ns))

	if *report != "" {
		if err := rep.WriteFile(*report); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
