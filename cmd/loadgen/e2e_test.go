package main

import (
	"bytes"
	"context"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/server"
	"tieredpricing/internal/sloreport"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/traces"
)

// concatStreams renders a dataset's per-router NetFlow streams into one
// deterministic tracegen-style pipe.
func concatStreams(t testing.TB, streams map[string][]byte) []byte {
	t.Helper()
	routers := make([]string, 0, len(streams))
	for r := range streams {
		routers = append(routers, r)
	}
	sort.Strings(routers)
	var buf bytes.Buffer
	for _, r := range routers {
		buf.Write(streams[r])
	}
	return buf.Bytes()
}

// TestLoadgenEndToEnd is the harness's acceptance test: an in-process
// tierd serving stack (window → repricer → HTTP server, with a live UDP
// collector), loadgen at a low fixed rate for a bounded window, and the
// SLO report checked for parseability, achieved-QPS tolerance, zero
// errors, and monotone quantiles.
func TestLoadgenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load test")
	}
	ds, err := traces.EUISP(91)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	datagrams, pairs, err := LoadStream(bytes.NewReader(concatStreams(t, streams)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("trace yields no quotable pairs")
	}

	// In-process tierd: the same window → repricer → server chain
	// cmd/tierd wires, with the repricer ticking fast enough that the
	// NetFlow push causes several reprices inside the measured window.
	w, err := stream.NewWindow(traces.AggregateKey, time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	collector, err := netflow.NewCollectorServer("127.0.0.1:0", w)
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	rp, err := stream.NewRepricer(stream.Config{
		Window:      w,
		Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          ds.P0,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       3,
		DurationSec: ds.DurationSec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	repDone := make(chan struct{})
	go func() {
		defer close(repDone)
		rp.Run(ctx, 250*time.Millisecond, nil)
	}()
	srv, err := server.New(server.Config{Snapshots: rp})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const targetQPS = 150.0
	rep, err := Run(ctx, Options{
		Target:        ts.URL,
		Datagrams:     datagrams,
		Pairs:         pairs,
		QPS:           targetQPS,
		Duration:      2 * time.Second,
		Workers:       8,
		NetflowAddr:   collector.Addr(),
		NetflowPPS:    100,
		Warmup:        true,
		WarmupTimeout: 60 * time.Second,
		Seed:          5,
		PID:           os.Getpid(),
		Profile:       "e2e",
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	<-repDone

	// The report round-trips through the schema loader (which validates).
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	parsed, err := sloreport.ReadFile(path)
	if err != nil {
		t.Fatalf("report does not parse back: %v", err)
	}
	if parsed.Profile != "e2e" || parsed.Requests != rep.Requests {
		t.Errorf("round-trip mismatch: %+v vs %+v", parsed, rep)
	}

	// Open-loop at 150 qps on loopback must hit its schedule.
	if frac := math.Abs(rep.AchievedQPS-targetQPS) / targetQPS; frac > 0.20 {
		t.Errorf("achieved %.1f qps is %.0f%% off the %.0f target", rep.AchievedQPS, frac*100, targetQPS)
	}
	if rep.Errors != 0 || rep.ErrorRate != 0 {
		t.Errorf("error rate %.4f (%d errors, %d misses) on a healthy daemon",
			rep.ErrorRate, rep.Errors, rep.Misses)
	}

	// Quantiles must be monotone and populated.
	l := rep.Latency
	if !(l.P50Ns <= l.P90Ns && l.P90Ns <= l.P99Ns && l.P99Ns <= l.P999Ns && l.P999Ns <= l.MaxNs) {
		t.Errorf("quantiles not monotone: %+v", l)
	}
	if l.P50Ns <= 0 {
		t.Errorf("p50 %d ns: latency not recorded", l.P50Ns)
	}

	// The concurrent NetFlow push ran and the daemon process was sampled.
	if rep.Netflow.Datagrams == 0 {
		t.Error("netflow push sent nothing")
	}
	if !rep.Proc.Sampled || rep.Proc.MaxRSSBytes <= 0 {
		t.Errorf("proc sampling missing: %+v", rep.Proc)
	}
}
