package main

import (
	"bytes"
	"context"
	"net/netip"
	"testing"
	"time"

	"tieredpricing/internal/netflow"
)

// makeStream encodes a two-packet export stream with overlapping
// endpoint pairs.
func makeStream(t *testing.T) []byte {
	t.Helper()
	rec := func(src, dst string, seq uint16) netflow.Record {
		return netflow.Record{
			SrcAddr: netip.MustParseAddr(src), DstAddr: netip.MustParseAddr(dst),
			SrcPort: 1024 + seq, DstPort: 443, Proto: 6, Octets: 1000, Packets: 1, SrcAS: seq,
		}
	}
	var buf bytes.Buffer
	w := netflow.NewWriter(&buf, netflow.Header{UnixSecs: 1257985000})
	for _, r := range []netflow.Record{
		rec("10.0.0.1", "10.1.0.1", 0),
		rec("10.0.0.1", "10.2.0.1", 1),
		rec("10.0.0.1", "10.1.0.1", 2), // duplicate pair
		rec("10.0.0.2", "10.1.0.1", 3),
	} {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadStream(t *testing.T) {
	datagrams, pairs, err := LoadStream(bytes.NewReader(makeStream(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(datagrams) == 0 {
		t.Fatal("no datagrams decoded")
	}
	want := []Pair{
		{"10.0.0.1", "10.1.0.1"},
		{"10.0.0.1", "10.2.0.1"},
		{"10.0.0.2", "10.1.0.1"},
	}
	if len(pairs) != len(want) {
		t.Fatalf("pairs %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("pair %d: %v, want %v (first-appearance order, deduplicated)", i, pairs[i], want[i])
		}
	}
	// Every datagram must be a decodable export packet.
	for i, d := range datagrams {
		if _, _, err := netflow.DecodePacket(d); err != nil {
			t.Errorf("datagram %d does not decode: %v", i, err)
		}
	}
}

func TestLoadStreamEmpty(t *testing.T) {
	if _, _, err := LoadStream(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestRunValidation(t *testing.T) {
	pairs := []Pair{{"10.0.0.1", "10.1.0.1"}}
	cases := []struct {
		name string
		opts Options
	}{
		{"no-target", Options{Pairs: pairs, QPS: 10, Duration: time.Second}},
		{"no-pairs", Options{Target: "http://127.0.0.1:1", QPS: 10, Duration: time.Second}},
		{"zero-qps", Options{Target: "http://127.0.0.1:1", Pairs: pairs, Duration: time.Second}},
		{"zero-duration", Options{Target: "http://127.0.0.1:1", Pairs: pairs, QPS: 10}},
		{"warmup-without-netflow", Options{Target: "http://127.0.0.1:1", Pairs: pairs,
			QPS: 10, Duration: time.Second, Warmup: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(context.Background(), tc.opts); err == nil {
				t.Error("invalid options accepted")
			}
		})
	}
}

func TestProcSamplerSelf(t *testing.T) {
	s := newProcSampler(0)
	if s != nil {
		t.Fatal("pid 0 must disable sampling")
	}
}
