//go:build race

package main

// raceEnabled reports whether the race detector is compiled in, so
// latency-bound tests can skip themselves (the detector slows the
// serving path by an order of magnitude and the bounds become noise).
const raceEnabled = true
