// Command tierd is the online pricing daemon (§5's deployment sketch as
// a serving system): it ingests NetFlow export streams continuously —
// over UDP from core routers and/or from stdin — into a sliding window,
// periodically re-fits the demand model and re-prices the tiers over the
// live window, and serves the result over HTTP from atomically-swapped
// immutable snapshots:
//
//	GET /v1/quote?src=IP&dst=IP   the current tier and price for a flow
//	GET /v1/tiers                 the current bundling
//	GET /healthz                  200 once the first snapshot is live
//	GET /metrics                  Prometheus counters and latency histograms
//
// Quickstart (replay a synthetic capture through the daemon):
//
//	tracegen -dataset euisp -out /tmp/euisp -stdout | tierd -trace /tmp/euisp -stdin
//	curl 'localhost:8080/v1/tiers'
//
// SIGINT/SIGTERM shut the daemon down gracefully: ingest is stopped and
// drained, one final re-price covers everything received, and in-flight
// HTTP requests complete.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"tieredpricing/internal/buildinfo"
	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/geoip"
	"tieredpricing/internal/histstore"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/server"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/topology"
	"tieredpricing/internal/traces"
	"tieredpricing/internal/wal"
)

type config struct {
	listen    string
	pprofAddr string
	udp       string
	stdin     bool
	trace     string

	model    string
	alpha    float64
	s0       float64
	theta    float64
	strategy string
	tiers    int
	blended  float64 // override meta blended rate when > 0

	// Durability: empty dataDir runs memory-only (the pre-durability
	// behavior); a data dir enables the WAL + checkpoint subsystem and
	// recover-on-boot.
	dataDir      string
	ckptInterval time.Duration
	ckptRetain   int
	walSync      wal.SyncMode
	walSegBytes  int64

	// Durable tier-table history (outlives checkpoint retention) and
	// pricing-config hot reload.
	historyStore  string        // store DSN or path (empty = ring-only)
	historyRing   int           // in-memory ring entries per engine
	historyRetain time.Duration // store retention by age (0 = keep forever)
	configFile    string        // hot-reloadable pricing config (SIGHUP re-reads)

	window       time.Duration
	slot         time.Duration
	ingestShards int // window shards (1 = the classic single-lock window)
	udpRcvbuf    int // SO_RCVBUF request per collector socket (0 = OS default)
	reprice      time.Duration
	demandSec  float64 // demand divisor override; 0 = capture duration from meta
	workers    int
	maxSnapAge time.Duration // staleness threshold; 0 = 4× reprice interval
	drainGrace time.Duration // bound on the shutdown drain (final re-price and HTTP)

	// Multi-tenant fleet mode: a -tenants spec file turns the daemon
	// into a per-network pricing fleet (see cmd/tierd/tenants.go).
	tenantsFile  string
	schedWorkers int           // reprice jobs running concurrently across tenants
	starveAfter  time.Duration // WFQ starvation bound; 0 = 2× the re-price interval

	// Test hooks, settable only by in-package tests (the chaos e2e):
	// they interpose fault injection between the daemon's components
	// without changing production wiring. Flags never populate these.
	wrapSink     func(netflow.Sink) netflow.Sink
	wrapResolver func(demandfit.EndpointResolver) demandfit.EndpointResolver
	// wrapTenantResolver interposes per tenant in fleet mode.
	wrapTenantResolver func(id string, rv demandfit.EndpointResolver) demandfit.EndpointResolver
	now                func() time.Time
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:8080", "HTTP listen address")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "",
		"net/http/pprof listen address on a listener separate from the quote API (e.g. 127.0.0.1:6060; empty disables)")
	flag.StringVar(&cfg.udp, "udp", "", "UDP NetFlow listen address (e.g. 127.0.0.1:2055; empty disables)")
	flag.BoolVar(&cfg.stdin, "stdin", false, "ingest a concatenated NetFlow stream from stdin (tracegen -stdout)")
	flag.StringVar(&cfg.trace, "trace", "", "trace directory with geoip.csv and meta.txt (required)")
	flag.StringVar(&cfg.model, "model", "ced", "demand model: ced or logit")
	flag.Float64Var(&cfg.alpha, "alpha", 1.1, "price sensitivity α")
	flag.Float64Var(&cfg.s0, "s0", 0.2, "logit no-purchase share")
	flag.Float64Var(&cfg.theta, "theta", 0.2, "linear cost model base fraction θ")
	flag.StringVar(&cfg.strategy, "strategy", "profit-weighted", "bundling strategy")
	flag.IntVar(&cfg.tiers, "tiers", 3, "number of pricing tiers")
	flag.Float64Var(&cfg.blended, "blended", 0, "blended rate override $/Mbps/month (default: meta.txt)")
	flag.DurationVar(&cfg.window, "window", 10*time.Minute, "sliding window length")
	flag.DurationVar(&cfg.slot, "slot", time.Minute, "window slot granularity")
	flag.IntVar(&cfg.ingestShards, "ingest-shards", 1,
		"ingest/window shards and UDP reader sockets; records route to shards by flow-key hash, so any count yields byte-identical pricing (try NumCPU for line-rate ingest)")
	flag.IntVar(&cfg.udpRcvbuf, "udp-rcvbuf", 0,
		"kernel receive buffer (SO_RCVBUF) requested per UDP collector socket in bytes (0 = OS default; kernel drops on overflow surface as tierd_ingest_socket_drops_total)")
	flag.DurationVar(&cfg.reprice, "reprice", 30*time.Second, "re-price interval")
	flag.Float64Var(&cfg.demandSec, "demand-sec", 0,
		"seconds of traffic the window represents when converting octets to Mbps (0 = capture duration from meta.txt)")
	flag.IntVar(&cfg.workers, "parallel", runtime.NumCPU(), "worker goroutines for the re-fit resolve fan-out")
	flag.DurationVar(&cfg.maxSnapAge, "max-snapshot-age", 0,
		"snapshot age after which /healthz reports degraded and quotes carry X-Tierd-Stale (0 = 4x the re-price interval)")
	flag.DurationVar(&cfg.drainGrace, "drain-grace", 5*time.Second,
		"bound on each shutdown drain step: the final re-price and the HTTP close each get this long")
	flag.StringVar(&cfg.dataDir, "data-dir", "",
		"durable state directory: WAL + checkpoints, recover-on-boot (empty = memory-only)")
	flag.DurationVar(&cfg.ckptInterval, "checkpoint-interval", time.Minute, "how often to checkpoint the window (needs -data-dir)")
	flag.IntVar(&cfg.ckptRetain, "checkpoint-retain", 3, "checkpoints kept on disk (newest first; older are fallbacks for corruption)")
	flag.StringVar(&cfg.historyStore, "history-store", "",
		"durable tier-history store path or DSN (e.g. /var/lib/tierd/history.db or sqlite:/var/lib/tierd/history.db; empty = in-memory ring only). Fleet mode shares one store, namespaced per tenant")
	flag.IntVar(&cfg.historyRing, "history-ring", defaultHistoryRing,
		"in-memory tier-history ring entries per engine (the cache in front of -history-store, carried in checkpoints)")
	flag.DurationVar(&cfg.historyRetain, "history-retain", 0,
		"drop history-store entries older than this (0 = keep forever; pruning compacts the store)")
	flag.StringVar(&cfg.configFile, "config", "",
		"hot-reloadable pricing config file (JSON); SIGHUP re-reads and swaps it with zero quoting downtime. Present fields override flags; tenant-spec overrides still win")
	flag.StringVar(&cfg.tenantsFile, "tenants", "",
		"tenant spec file (JSON) enabling multi-tenant fleet mode: per-tenant windows, repricers, quotas and durability namespaces")
	flag.IntVar(&cfg.schedWorkers, "reprice-workers", 1,
		"re-price jobs running concurrently across tenants (fleet mode; each job still fans out over -parallel workers)")
	flag.DurationVar(&cfg.starveAfter, "reprice-starve", 0,
		"dispatch a queued re-price regardless of its fair-queue tag after waiting this long (fleet mode; 0 = 2x the re-price interval)")
	walSyncFlag := flag.String("wal-sync", "batch", "WAL fsync policy: batch (group commit), always, or none")
	flag.Int64Var(&cfg.walSegBytes, "wal-segment-bytes", 4<<20, "WAL segment rotation size in bytes")
	showVersion := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *showVersion {
		bi := buildinfo.Get()
		fmt.Printf("tierd %s\n", bi.String())
		return
	}
	var err error
	if cfg.walSync, err = wal.ParseSyncMode(*walSyncFlag); err != nil {
		fmt.Fprintln(os.Stderr, "tierd:", err)
		os.Exit(2)
	}
	if cfg.trace == "" && cfg.tenantsFile == "" {
		fmt.Fprintln(os.Stderr, "tierd: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	if !cfg.stdin && cfg.udp == "" {
		fmt.Fprintln(os.Stderr, "tierd: need at least one ingest path (-udp and/or -stdin)")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, err := startDaemon(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tierd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tierd: serving http://%s", d.httpAddr())
	if d.udp != nil {
		fmt.Fprintf(os.Stderr, ", ingesting udp %s", d.udpAddr())
	}
	if cfg.stdin {
		fmt.Fprint(os.Stderr, ", ingesting stdin")
	}
	fmt.Fprintln(os.Stderr)
	if err := d.run(ctx, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "tierd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tierd: drained and stopped")
}

// daemon owns the wired-together subsystems of one tierd instance.
type daemon struct {
	cfg      config
	window   *stream.ShardedWindow
	sink     netflow.Sink // the window, possibly behind durability and/or a fault-injection wrapper
	durable  *durability  // nil when running memory-only (no -data-dir)
	repricer *stream.Repricer
	reloader *engineReloader
	recorder *histRecorder
	metrics  *server.Metrics
	fleet    *fleet // non-nil in multi-tenant mode (-tenants); most fields above stay nil

	// histStore is the shared durable tier-history store (nil without
	// -history-store); reload is the process-wide hot-reload state.
	histStore histstore.Store
	reload    *reloadState

	udp      *netflow.CollectorServer
	httpSrv  *http.Server
	ln       net.Listener
	pprofSrv *http.Server
	pprofLn  net.Listener
}

// engineSpec is one pricing instance's effective configuration: the
// daemon flags for a single-tenant daemon, or those flags overlaid with
// a tenant's spec overrides in fleet mode.
type engineSpec struct {
	trace     string
	model     string
	alpha     float64
	s0        float64
	theta     float64
	strategy  string
	tiers     int
	blended   float64
	demandSec float64
}

// engineFromConfig is the single-tenant engine: the flags verbatim.
func engineFromConfig(cfg config) engineSpec {
	return engineSpec{
		trace:     cfg.trace,
		model:     cfg.model,
		alpha:     cfg.alpha,
		s0:        cfg.s0,
		theta:     cfg.theta,
		strategy:  cfg.strategy,
		tiers:     cfg.tiers,
		blended:   cfg.blended,
		demandSec: cfg.demandSec,
	}
}

// engineReloader re-derives and swaps one engine's pricing
// configuration from a (possibly file-overlaid) engineSpec — the hot
// reload path. check validates without applying; apply swaps the
// running repricer's configuration in place. Both close over the
// engine's trace metadata and resolver, which a reload never rebuilds:
// a reload re-prices the demand you have under new economics, it does
// not change where the demand comes from.
type engineReloader struct {
	check func(engineSpec) error
	apply func(engineSpec) error
}

// buildEngine loads the trace metadata and builds one window → repricer
// pricing engine plus its hot-reload handle. wrapResolver, when
// non-nil, interposes on the endpoint resolver (fault-injection test
// hook).
func buildEngine(cfg config, es engineSpec,
	wrapResolver func(demandfit.EndpointResolver) demandfit.EndpointResolver) (*stream.ShardedWindow, *stream.Repricer, *engineReloader, error) {
	if es.trace == "" {
		return nil, nil, nil, errors.New("no trace directory (set -trace or the tenant's \"trace\")")
	}
	meta, err := traces.ReadMetaFile(filepath.Join(es.trace, "meta.txt"))
	if err != nil {
		return nil, nil, nil, err
	}
	geoFile, err := os.Open(filepath.Join(es.trace, "geoip.csv"))
	if err != nil {
		return nil, nil, nil, err
	}
	geo, err := geoip.ReadCSV(geoFile)
	geoFile.Close()
	if err != nil {
		return nil, nil, nil, err
	}
	var rv demandfit.EndpointResolver
	base := &demandfit.Resolver{Geo: geo, DistanceRegions: meta.Dataset == "euisp"}
	if meta.Dataset == "internet2" {
		base.Topo = topology.Internet2()
	}
	rv = base
	if wrapResolver != nil {
		rv = wrapResolver(rv)
	}

	// pricingConfig derives the repricer configuration from a spec: the
	// one code path construction and every later reload go through, so
	// the two can't diverge on defaults or validation.
	pricingConfig := func(es engineSpec) (stream.Config, error) {
		var dm econ.Model
		switch es.model {
		case "ced":
			dm = econ.CED{Alpha: es.alpha}
		case "logit":
			dm = econ.Logit{Alpha: es.alpha, S0: es.s0}
		default:
			return stream.Config{}, fmt.Errorf("unknown demand model %q", es.model)
		}
		strategy, err := bundling.ByName(es.strategy)
		if err != nil {
			return stream.Config{}, err
		}
		p0 := meta.P0
		if es.blended > 0 {
			p0 = es.blended
		}
		durationSec := es.demandSec
		if durationSec == 0 {
			// Replaying a capture: the octets in the window represent the
			// capture duration, not the window span.
			durationSec = meta.DurationSec
		}
		return stream.Config{
			Resolver:    rv,
			Demand:      dm,
			Cost:        cost.Linear{Theta: es.theta},
			P0:          p0,
			Strategy:    strategy,
			Tiers:       es.tiers,
			DurationSec: durationSec,
			Workers:     cfg.workers,
		}, nil
	}

	scfg, err := pricingConfig(es)
	if err != nil {
		return nil, nil, nil, err
	}
	if cfg.slot <= 0 || cfg.window < cfg.slot {
		return nil, nil, nil, fmt.Errorf("window %v must be at least one slot %v", cfg.window, cfg.slot)
	}
	shards := cfg.ingestShards
	if shards < 1 {
		shards = 1
	}
	w, err := stream.NewShardedWindow(traces.AggregateKey, cfg.slot, int(cfg.window/cfg.slot), shards)
	if err != nil {
		return nil, nil, nil, err
	}
	if cfg.now != nil {
		w.SetClock(cfg.now)
	}
	scfg.Window = w
	scfg.DrainGrace = cfg.drainGrace
	scfg.Now = cfg.now
	rp, err := stream.NewRepricer(scfg)
	if err != nil {
		return nil, nil, nil, err
	}
	rl := &engineReloader{
		check: func(es engineSpec) error {
			c, err := pricingConfig(es)
			if err != nil {
				return err
			}
			return rp.CheckConfig(c)
		},
		apply: func(es engineSpec) error {
			c, err := pricingConfig(es)
			if err != nil {
				return err
			}
			return rp.Reconfigure(c)
		},
	}
	return w, rp, rl, nil
}

// startDaemon loads the trace metadata, builds the window → repricer →
// server chain, and starts the UDP and HTTP listeners. It does not
// block; call run to serve until cancelled. A -tenants file swaps the
// single engine for a fleet of them (tenants.go).
func startDaemon(cfg config) (*daemon, error) {
	if cfg.tenantsFile != "" {
		return startFleet(cfg)
	}
	es := engineFromConfig(cfg)
	if cfg.configFile != "" {
		// The boot read of -config is strict: a file the daemon cannot
		// serve under is a refusal to start, not a silent fallback. Later
		// SIGHUP re-reads keep serving on error instead.
		fc, err := loadFileConfig(cfg.configFile)
		if err != nil {
			return nil, fmt.Errorf("-config: %w", err)
		}
		es = applyFileConfig(es, fc)
	}
	w, rp, rl, err := buildEngine(cfg, es, cfg.wrapResolver)
	if err != nil {
		return nil, err
	}

	maxAge := cfg.maxSnapAge
	if maxAge == 0 {
		// Default policy: a snapshot that has survived four re-price
		// intervals means the loop is stuck, not just slow.
		maxAge = 4 * cfg.reprice
	}
	d := &daemon{cfg: cfg, window: w, sink: w, repricer: rp, reloader: rl,
		metrics: server.NewMetrics(), reload: newReloadState()}
	if cfg.historyStore != "" {
		if d.histStore, err = histstore.Open(cfg.historyStore, histstore.Options{}); err != nil {
			return nil, fmt.Errorf("opening history store: %w", err)
		}
	}
	d.recorder = newHistRecorder("default", cfg.historyRing, d.histStore, d.reload.epoch)
	fail := func(err error) (*daemon, error) {
		if d.histStore != nil {
			d.histStore.Close()
		}
		return nil, err
	}
	if cfg.dataDir != "" {
		// Recover before serving: restore the newest checkpoint, replay
		// the WAL tail through the window, and publish a warm snapshot so
		// a restart resumes quoting where the crash left off.
		if d.durable, err = openDurability(cfg, cfg.dataDir, "", w, rp, d.recorder, d.reload.epoch); err != nil {
			return fail(err)
		}
		d.reload.raise(d.durable.restoredConfigEpoch)
		d.sink = d.durable.sink()
		if err := d.durable.warmReprice(cfg.drainGrace); err != nil {
			// Serve cold rather than refuse to boot; the periodic loop
			// will publish once the resolver (or window) comes back.
			fmt.Fprintln(os.Stderr, "tierd:", err)
		}
	}
	srvCfg := server.Config{
		Snapshots:      rp,
		Metrics:        d.metrics,
		Ingest:         d.ingestStats,
		MaxSnapshotAge: maxAge,
		Now:            cfg.now,
		History:        d.recorder.snapshot,
		Reload:         d.reload.stats,
	}
	if d.histStore != nil {
		srvCfg.HistoryScan = d.recorder.scan
		srvCfg.HistoryStore = histStoreStats(d.histStore)
	}
	if d.durable != nil {
		srvCfg.Durability = d.durable.stats
	}
	srv, err := server.New(srvCfg)
	if err != nil {
		if d.durable != nil {
			d.durable.log.Close()
		}
		return fail(err)
	}
	if cfg.wrapSink != nil {
		// Fault injection wraps outside durability: the WAL records what
		// survived the (simulated) network, exactly what the window saw.
		d.sink = cfg.wrapSink(d.sink)
	}
	if d.durable != nil {
		d.durable.start()
	}
	if err := d.startListeners(srv.Handler()); err != nil {
		return fail(err)
	}
	return d, nil
}

// startListeners starts the daemon's UDP collector (feeding d.sink) and
// the HTTP and pprof servers. On failure everything already listening
// is torn down.
func (d *daemon) startListeners(handler http.Handler) error {
	cfg := d.cfg
	var err error
	if cfg.udp != "" {
		d.udp, err = netflow.NewCollectorServerOpts(cfg.udp, d.sink, netflow.ServerOptions{
			Sockets: cfg.ingestShards,
			RcvBuf:  cfg.udpRcvbuf,
		})
		if err != nil {
			return err
		}
	}
	d.ln, err = net.Listen("tcp", cfg.listen)
	if err != nil {
		if d.udp != nil {
			d.udp.Close()
		}
		return fmt.Errorf("http listen: %w", err)
	}
	d.httpSrv = &http.Server{Handler: handler}
	go func() {
		if err := d.httpSrv.Serve(d.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "tierd: http:", err)
		}
	}()
	if cfg.pprofAddr != "" {
		// Profiling gets its own listener so it can stay bound to loopback
		// (and be firewalled independently) while the quote API is exposed.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		d.pprofLn, err = net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			d.close()
			return fmt.Errorf("pprof listen: %w", err)
		}
		d.pprofSrv = &http.Server{Handler: mux}
		go func() {
			if err := d.pprofSrv.Serve(d.pprofLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "tierd: pprof:", err)
			}
		}()
	}
	return nil
}

// close tears down the listeners of a partially-started daemon.
func (d *daemon) close() {
	if d.udp != nil {
		d.udp.Close()
	}
	if d.ln != nil {
		d.ln.Close()
	}
}

func (d *daemon) httpAddr() string { return d.ln.Addr().String() }

func (d *daemon) udpAddr() string { return d.udp.Addr() }

// ingestStats merges the UDP server's and the window's counters for the
// /metrics endpoint.
func (d *daemon) ingestStats() server.IngestStats {
	var packets, bad int
	var socketDrops uint64
	if d.udp != nil {
		packets, bad = d.udp.Stats()
		socketDrops = d.udp.SocketDrops()
	}
	records, duplicates, dropped, _ := d.window.Stats()
	return server.IngestStats{
		Packets:      uint64(packets),
		BadPackets:   uint64(bad),
		Records:      uint64(records),
		Duplicates:   uint64(duplicates),
		Dropped:      uint64(dropped),
		SocketDrops:  socketDrops,
		ShardRecords: d.window.ShardRecords(),
	}
}

// onTick feeds re-price telemetry into the metrics. An empty window
// before the first snapshot is the normal warm-up state, not a failure;
// an empty window afterwards is an ingest gap and counts like one (the
// repricer's consecutive-failure accounting makes the same call).
func (d *daemon) onTick(snap *stream.Snapshot, elapsed time.Duration, err error) {
	d.metrics.ConsecutiveFailures.Set(d.repricer.ConsecutiveFailures())
	if errors.Is(err, stream.ErrEmptyWindow) && d.repricer.Current() == nil {
		return
	}
	d.metrics.ObserveReprice(elapsed.Seconds(), err != nil)
	if snap != nil {
		d.metrics.RepriceFlows.Set(int64(snap.Table.Flows))
		d.recorder.record(snap)
	}
	if err != nil && !errors.Is(err, stream.ErrEmptyWindow) {
		fmt.Fprintln(os.Stderr, "tierd: reprice:", err)
	}
}

// run serves until ctx is cancelled, then drains: ingest paths are
// stopped first, the repricer performs its final pass over everything
// received, and the HTTP server completes in-flight requests.
func (d *daemon) run(ctx context.Context, stdin io.Reader) error {
	if d.histStore != nil {
		// Deferred first so it runs last: /v1/history can hit the store
		// until the final in-flight HTTP request completes, and the prune
		// loop must stop before its store disappears.
		defer d.histStore.Close()
	}
	if stop := d.startReloadWatcher(); stop != nil {
		defer stop()
	}
	if stop := d.startPruneLoop(); stop != nil {
		defer stop()
	}
	if d.fleet != nil {
		return d.runFleet(ctx, stdin)
	}
	// The reprice loop outlives ctx on purpose: its final drain pass must
	// run after ingest has stopped, so it gets its own cancellation.
	repCtx, repCancel := context.WithCancel(context.Background())
	repDone := make(chan struct{})
	go func() {
		defer close(repDone)
		d.repricer.Run(repCtx, d.cfg.reprice, d.onTick)
	}()

	stdinDone := make(chan struct{})
	if d.cfg.stdin {
		go func() {
			defer close(stdinDone)
			d.ingestStdin(ctx, stdin)
		}()
	} else {
		close(stdinDone)
	}

	<-ctx.Done()

	// Drain order: stop ingest, then the final re-price, then HTTP.
	if d.udp != nil {
		d.udp.Close() // blocks until the receive loop exits
	}
	<-stdinDone
	repCancel()
	<-repDone
	if d.durable != nil {
		// The drain re-price has published; the final checkpoint covers
		// the whole log, so a clean restart replays nothing.
		if err := d.durable.close(); err != nil {
			fmt.Fprintln(os.Stderr, "tierd: durability:", err)
		}
	}
	grace := d.cfg.drainGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if d.pprofSrv != nil {
		_ = d.pprofSrv.Shutdown(shutdownCtx)
	}
	return d.httpSrv.Shutdown(shutdownCtx)
}

// ingestStdin feeds a concatenated export stream (tracegen -stdout) into
// the window and re-prices as soon as the stream ends, so piped replays
// serve quotes without waiting for the next tick.
func (d *daemon) ingestStdin(ctx context.Context, stdin io.Reader) {
	rd := netflow.NewReader(bufio.NewReader(stdin))
	for ctx.Err() == nil {
		h, recs, err := rd.Next()
		if err == io.EOF {
			start := time.Now()
			snap, rerr := d.repricer.Reprice(ctx)
			d.onTick(snap, time.Since(start), rerr)
			if rerr == nil {
				fmt.Fprintln(os.Stderr, "tierd: stdin stream complete, snapshot published")
			}
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tierd: stdin:", err)
			return
		}
		d.sink.Ingest(h, recs)
	}
}
