package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"tieredpricing/internal/checkpoint"
	"tieredpricing/internal/histstore"
	"tieredpricing/internal/server"
	"tieredpricing/internal/stream"
)

// defaultHistoryRing bounds the in-memory tier-table ring when the
// -history-ring flag is unset (the pre-store maxHistory value, so a
// seed deployment's checkpoints keep the same history depth).
const defaultHistoryRing = 512

// histRecorder owns one pricing engine's tier-table history. The
// bounded in-memory ring is a cache: it serves shallow /v1/history
// queries without touching disk and rides along in checkpoints, while
// every published table is also appended to the durable store (when
// one is configured), which outlives checkpoint retention and serves
// deep range queries. The store append is idempotent on
// (tenant, epoch), so replaying the ring into the store after a
// restore from an older checkpoint is a no-op for rows the store
// already has — history cannot double-append across crashes.
type histRecorder struct {
	tenant   string
	max      int
	store    histstore.Store // nil = ring-only (no -history-store)
	cfgEpoch func() int64    // process-wide pricing-config generation

	mu        sync.Mutex
	ring      []server.HistoryEntry
	lastEpoch int64 // newest epoch recorded (ring and store agree)
}

func newHistRecorder(tenant string, max int, store histstore.Store, cfgEpoch func() int64) *histRecorder {
	if max < 1 {
		max = defaultHistoryRing
	}
	if cfgEpoch == nil {
		cfgEpoch = func() int64 { return 1 }
	}
	return &histRecorder{tenant: tenant, max: max, store: store, cfgEpoch: cfgEpoch}
}

// record appends a newly published snapshot's table to the ring and
// the store (one entry per epoch; replays of an already-recorded epoch
// are ignored). Store append failures keep the daemon serving — the
// ring still has the entry and the error surfaces via the store's
// append-error counter and stderr.
func (r *histRecorder) record(snap *stream.Snapshot) {
	if snap == nil {
		return
	}
	table, err := snap.Table.Marshal()
	if err != nil {
		return
	}
	ce := r.cfgEpoch()
	e := server.HistoryEntry{At: snap.FittedAt, Epoch: snap.Epoch, ConfigEpoch: ce, Table: json.RawMessage(table)}

	r.mu.Lock()
	if snap.Epoch <= r.lastEpoch {
		r.mu.Unlock()
		return
	}
	r.lastEpoch = snap.Epoch
	r.ring = append(r.ring, e)
	if len(r.ring) > r.max {
		r.ring = r.ring[len(r.ring)-r.max:]
	}
	r.mu.Unlock()

	if r.store != nil {
		if err := r.store.Append(histstore.Entry{
			Tenant: r.tenant, Epoch: e.Epoch, ConfigEpoch: ce, At: e.At, Table: e.Table,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "tierd: history store:", err)
		}
	}
}

// restore seeds the ring from a checkpoint's history series and
// replays it into the store. lastEpoch is the checkpoint's serving
// epoch — the high-water mark below which record calls are replays.
// The store replay is where idempotence earns its keep: after a crash
// recovered from an older checkpoint, the store already holds rows the
// checkpoint predates, and the (tenant, epoch) key keeps the
// first-written row for each.
func (r *histRecorder) restore(entries []checkpoint.HistoryEntry, lastEpoch int64) {
	r.mu.Lock()
	r.ring = r.ring[:0]
	for _, he := range entries {
		ce := he.ConfigEpoch
		if ce == 0 {
			ce = 1 // pre-reload checkpoint: everything was generation 1
		}
		r.ring = append(r.ring, server.HistoryEntry{At: he.At, Epoch: he.Epoch, ConfigEpoch: ce, Table: he.Table})
	}
	if len(r.ring) > r.max {
		r.ring = r.ring[len(r.ring)-r.max:]
	}
	if lastEpoch > r.lastEpoch {
		r.lastEpoch = lastEpoch
	}
	ring := append([]server.HistoryEntry(nil), r.ring...)
	r.mu.Unlock()

	if r.store == nil {
		return
	}
	for _, e := range ring {
		if err := r.store.Append(histstore.Entry{
			Tenant: r.tenant, Epoch: e.Epoch, ConfigEpoch: e.ConfigEpoch, At: e.At, Table: e.Table,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "tierd: history store backfill:", err)
			return
		}
	}
}

// snapshot copies the ring for GET /v1/history's shallow path.
func (r *histRecorder) snapshot() []server.HistoryEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]server.HistoryEntry, len(r.ring))
	copy(out, r.ring)
	return out
}

// checkpointEntries copies the ring in checkpoint form.
func (r *histRecorder) checkpointEntries() []checkpoint.HistoryEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]checkpoint.HistoryEntry, 0, len(r.ring))
	for _, e := range r.ring {
		out = append(out, checkpoint.HistoryEntry{At: e.At, Epoch: e.Epoch, Table: e.Table, ConfigEpoch: e.ConfigEpoch})
	}
	return out
}

// scan serves a deep /v1/history range query from the store.
func (r *histRecorder) scan(q server.HistoryQuery) ([]server.HistoryEntry, error) {
	rows, err := r.store.Scan(r.tenant, histstore.Query{
		SinceEpoch: q.Since, UntilEpoch: q.Until, Limit: q.Limit,
	})
	if err != nil {
		return nil, err
	}
	out := make([]server.HistoryEntry, 0, len(rows))
	for _, row := range rows {
		out = append(out, server.HistoryEntry{At: row.At, Epoch: row.Epoch, ConfigEpoch: row.ConfigEpoch, Table: row.Table})
	}
	return out, nil
}

// startPruneLoop applies -history-retain to the store periodically
// (age-based retention; pruning compacts the store file). Returns a
// stop function, or nil when no retention is configured.
func (d *daemon) startPruneLoop() func() {
	if d.histStore == nil || d.cfg.historyRetain <= 0 {
		return nil
	}
	interval := d.cfg.historyRetain / 4
	if interval > time.Minute {
		interval = time.Minute
	}
	if interval < time.Second {
		interval = time.Second
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ticker.C:
				if _, err := d.histStore.Prune(histstore.Retention{MaxAge: d.cfg.historyRetain}); err != nil {
					fmt.Fprintln(os.Stderr, "tierd: history prune:", err)
				}
			}
		}
	}()
	return func() { close(stopCh); <-done }
}

// histStoreStats adapts the store's counters for /metrics.
func histStoreStats(st histstore.Store) func() server.HistoryStoreStats {
	return func() server.HistoryStoreStats {
		s := st.Stats()
		return server.HistoryStoreStats{
			Entries:       s.Entries,
			Bytes:         s.Bytes,
			Appends:       s.Appends,
			Dupes:         s.Dupes,
			AppendErrors:  s.AppendErrors,
			Flushes:       s.Flushes,
			Folds:         s.Folds,
			Compactions:   s.Compactions,
			Pruned:        s.Pruned,
			Scans:         s.Scans,
			OpenTornBytes: s.OpenTornBytes,
		}
	}
}
