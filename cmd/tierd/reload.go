// Zero-downtime pricing-config hot reload (-config + SIGHUP): the
// daemon re-reads the config file, validates the resulting engine
// configuration(s) against the live window, and atomically swaps the
// repricer's pricing parameters. The serving snapshot keeps quoting
// throughout — the new configuration takes effect at the next
// re-price — so quoting never returns a non-200 across a reload. Each
// successful reload bumps the process-wide config epoch, which stamps
// every subsequently published history entry and checkpoint.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"

	"tieredpricing/internal/server"
)

// fileConfig is the hot-reloadable pricing configuration: a JSON
// object whose present fields override the corresponding flags
// (tenant-spec overrides still win on top in fleet mode — the overlay
// order is flags < config file < tenant spec). Pointer fields
// distinguish "absent, inherit the flag" from an explicit zero, and
// unknown keys are rejected so a typo cannot reload as a silent no-op.
type fileConfig struct {
	Model     *string  `json:"model,omitempty"`
	Alpha     *float64 `json:"alpha,omitempty"`
	S0        *float64 `json:"s0,omitempty"`
	Theta     *float64 `json:"theta,omitempty"`
	Strategy  *string  `json:"strategy,omitempty"`
	Tiers     *int     `json:"tiers,omitempty"`
	Blended   *float64 `json:"blended,omitempty"`
	DemandSec *float64 `json:"demand_sec,omitempty"`
}

// loadFileConfig reads and strictly parses a -config file.
func loadFileConfig(path string) (*fileConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var fc fileConfig
	if err := dec.Decode(&fc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("parsing %s: trailing data after the config object", path)
	}
	return &fc, nil
}

// applyFileConfig overlays a config file's present fields on an
// engine spec.
func applyFileConfig(es engineSpec, fc *fileConfig) engineSpec {
	if fc == nil {
		return es
	}
	if fc.Model != nil {
		es.model = *fc.Model
	}
	if fc.Alpha != nil {
		es.alpha = *fc.Alpha
	}
	if fc.S0 != nil {
		es.s0 = *fc.S0
	}
	if fc.Theta != nil {
		es.theta = *fc.Theta
	}
	if fc.Strategy != nil {
		es.strategy = *fc.Strategy
	}
	if fc.Tiers != nil {
		es.tiers = *fc.Tiers
	}
	if fc.Blended != nil {
		es.blended = *fc.Blended
	}
	if fc.DemandSec != nil {
		es.demandSec = *fc.DemandSec
	}
	return es
}

// reloadState is the process-wide hot-reload bookkeeping: the config
// epoch (generation 1 is the boot config; restore fast-forwards past
// generations older checkpoints recorded) and the reload outcome
// counters for /metrics.
type reloadState struct {
	mu       sync.Mutex // serializes reloads
	cfgEpoch atomic.Int64
	reloads  atomic.Uint64
	errors   atomic.Uint64
}

func newReloadState() *reloadState {
	rs := &reloadState{}
	rs.cfgEpoch.Store(1)
	return rs
}

// epoch reads the current config generation (the recorder stamp).
func (rs *reloadState) epoch() int64 { return rs.cfgEpoch.Load() }

// raise fast-forwards the epoch to at least e (checkpoint restore).
func (rs *reloadState) raise(e int64) {
	for {
		cur := rs.cfgEpoch.Load()
		if e <= cur || rs.cfgEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

func (rs *reloadState) stats() server.ReloadStats {
	return server.ReloadStats{
		ConfigEpoch:  rs.cfgEpoch.Load(),
		Reloads:      rs.reloads.Load(),
		ReloadErrors: rs.errors.Load(),
	}
}

// reloadConfig performs one hot reload: re-read the -config file,
// validate every engine's new configuration, swap them in, and bump
// the config epoch. Any failure leaves every engine on its current
// configuration (fleet reloads validate all tenants before touching
// any) and counts a reload error; the daemon keeps serving either way.
func (d *daemon) reloadConfig() error {
	rs := d.reload
	rs.mu.Lock()
	defer rs.mu.Unlock()
	fail := func(err error) error {
		rs.errors.Add(1)
		fmt.Fprintln(os.Stderr, "tierd: config reload:", err)
		return err
	}
	fc, err := loadFileConfig(d.cfg.configFile)
	if err != nil {
		return fail(err)
	}
	base := applyFileConfig(engineFromConfig(d.cfg), fc)
	if d.fleet != nil {
		// All-or-nothing across the fleet: a bad overlay for any tenant
		// rejects the reload for all of them, so tenants never serve
		// mixed config generations.
		specs := make([]engineSpec, len(d.fleet.members))
		for i, m := range d.fleet.members {
			specs[i] = overlaySpec(base, m.spec)
			if err := m.reloader.check(specs[i]); err != nil {
				return fail(fmt.Errorf("tenant %s: %w", m.spec.ID, err))
			}
		}
		for i, m := range d.fleet.members {
			if err := m.reloader.apply(specs[i]); err != nil {
				// check passed on identical inputs; reaching here is a bug,
				// but count and report it rather than hide it.
				return fail(fmt.Errorf("tenant %s: %w", m.spec.ID, err))
			}
		}
	} else {
		if err := d.reloader.apply(base); err != nil {
			return fail(err)
		}
	}
	epoch := rs.cfgEpoch.Add(1)
	rs.reloads.Add(1)
	fmt.Fprintf(os.Stderr, "tierd: config reloaded from %s (config epoch %d)\n", d.cfg.configFile, epoch)
	return nil
}

// startReloadWatcher subscribes to SIGHUP when -config is set.
// Returns a stop function, or nil when reloads are not enabled.
func (d *daemon) startReloadWatcher() func() {
	if d.cfg.configFile == "" {
		return nil
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range hup {
			d.reloadConfig() // failures are counted and logged inside
		}
	}()
	return func() {
		signal.Stop(hup)
		close(hup)
		<-done
	}
}
