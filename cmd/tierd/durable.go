package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tieredpricing/internal/checkpoint"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/server"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/wal"
)

// durability owns tierd's persistent state: the write-ahead log every
// accepted datagram goes through and the periodic checkpoints that
// bound replay time. The tier-table history ring it used to carry
// lives in a histRecorder now (history.go); checkpoints embed the
// recorder's ring so a restore still warms /v1/history instantly.
//
// The central invariant is the pairing discipline: every logged
// sub-batch is applied to its window shard under the same per-shard
// lock that appended it, and the checkpoint loop quiesces all of them
// (the ckpt side of mu is exclusive; ingest holds it shared) across
// {WAL position read; window export}. A checkpoint therefore covers
// exactly the WAL prefix its window state contains — never an entry the
// window hasn't applied, never an applied entry the WAL position
// excludes — which is what makes "restore checkpoint, replay WAL tail"
// reproduce the pre-crash window byte for byte. Sharding preserves the
// invariant without a global ingest lock because entries for different
// shards commute: they touch disjoint shard state and every read is a
// commutative merge, so any interleaving of the per-shard append/apply
// sequences replays to the same merged window.
type durability struct {
	dataDir  string
	walDir   string
	ckptDir  string
	tenantID string // stamps checkpoints in multi-tenant namespaces ("" = legacy layout)
	retain   int
	interval time.Duration
	now      func() time.Time

	log      *wal.Log
	window   *stream.ShardedWindow
	repricer *stream.Repricer

	// mu is the checkpoint quiesce: ingests hold it shared, a checkpoint
	// holds it exclusively while capturing {WAL position, window export}.
	mu sync.RWMutex
	// shardMu[i] pairs {WAL append; shard apply} for shard i, making the
	// apply order within a shard equal to its WAL order (see above).
	shardMu []sync.Mutex

	stopCh chan struct{}
	doneCh chan struct{}

	checkpoints       atomic.Uint64
	lastCkptNano      atomic.Int64
	recoveryReplayed  atomic.Uint64
	recoveryTornBytes atomic.Uint64

	// hist is the engine's history recorder: checkpoints embed its ring
	// and a restore seeds it back.
	hist *histRecorder
	// configEpoch reads the process-wide pricing-config generation for
	// checkpoint framing.
	configEpoch func() int64
	// restoredConfigEpoch is the generation the restored checkpoint was
	// taken under (0 when booting fresh); the daemon fast-forwards its
	// epoch counter to at least this.
	restoredConfigEpoch int64
}

// openDurability recovers state from dir and returns the live
// subsystem: window and repricer are restored (newest valid checkpoint
// + WAL-tail replay through the window's own ingest path), the WAL is
// open for appending at the recovered end, and the checkpoint loop is
// ready to start. Single-tenant daemons pass dir = cfg.dataDir and an
// empty tenantID (the original <data-dir>/{wal,checkpoint} layout);
// fleet daemons pass each tenant's namespace directory and ID, which
// stamps checkpoints so a namespace mix-up is refused at boot.
func openDurability(cfg config, dir, tenantID string, w *stream.ShardedWindow, rp *stream.Repricer,
	rec *histRecorder, configEpoch func() int64) (*durability, error) {
	d := &durability{
		dataDir:     dir,
		walDir:      filepath.Join(dir, "wal"),
		ckptDir:     filepath.Join(dir, "checkpoint"),
		tenantID:    tenantID,
		retain:      cfg.ckptRetain,
		interval:    cfg.ckptInterval,
		now:         cfg.now,
		window:      w,
		repricer:    rp,
		hist:        rec,
		configEpoch: configEpoch,
		shardMu:     make([]sync.Mutex, w.NumShards()),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
	}
	if d.configEpoch == nil {
		d.configEpoch = func() int64 { return 1 }
	}
	if d.now == nil {
		d.now = time.Now
	}

	st, ckptPath, err := checkpoint.LoadNewest(d.ckptDir)
	if err != nil {
		return nil, fmt.Errorf("loading checkpoint: %w", err)
	}
	var from wal.Position
	if st != nil {
		if st.Tenant != "" && tenantID != "" && st.Tenant != tenantID {
			return nil, fmt.Errorf("checkpoint %s belongs to tenant %q, not %q — wrong namespace?",
				ckptPath, st.Tenant, tenantID)
		}
		if err := w.Import(st.Window); err != nil {
			return nil, fmt.Errorf("restoring window from %s: %w", ckptPath, err)
		}
		from = st.WAL
		rp.RestoreEpoch(st.Epoch)
		d.restoredConfigEpoch = st.ConfigEpoch
		if d.restoredConfigEpoch == 0 {
			d.restoredConfigEpoch = 1 // pre-reload checkpoint
		}
		if d.hist != nil {
			d.hist.restore(st.History, st.Epoch)
		}
		fmt.Fprintf(os.Stderr, "tierd: restored checkpoint %s (epoch %d, %d slots, wal %d/%d)\n",
			filepath.Base(ckptPath), st.Epoch, len(st.Window.Slots), st.WAL.Segment, st.WAL.Offset)
	}

	res, err := wal.Replay(d.walDir, from, func(ts time.Time, h netflow.Header, recs []netflow.Record) error {
		w.IngestAt(ts, h, recs)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("replaying wal: %w", err)
	}
	d.recoveryReplayed.Store(uint64(res.Entries))
	d.recoveryTornBytes.Store(uint64(res.TornBytes))
	if res.Entries > 0 || res.Torn {
		fmt.Fprintf(os.Stderr, "tierd: replayed %d wal entries (torn tail: %v, %d bytes discarded)\n",
			res.Entries, res.Torn, res.TornBytes)
	}

	d.log, err = wal.OpenAt(d.walDir, wal.Options{
		SegmentBytes: cfg.walSegBytes,
		Sync:         cfg.walSync,
	}, res.End)
	if err != nil {
		return nil, fmt.Errorf("opening wal: %w", err)
	}
	return d, nil
}

// sink wraps the window as a netflow.Sink that logs before it applies:
// the arrival timestamp is captured once and used for both the WAL
// entry and the window slotting, so replaying the entry reproduces the
// original slotting decision exactly. The datagram is dealt into its
// per-shard sub-batches first, and each sub-batch is logged and applied
// under that shard's pairing lock — concurrent readers ingesting into
// different shards never serialize against each other, only against a
// checkpoint's quiesce.
func (d *durability) sink() netflow.Sink { return durableSink{d} }

type durableSink struct{ d *durability }

func (s durableSink) Ingest(h netflow.Header, recs []netflow.Record) {
	d := s.d
	ts := d.now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.window.Deal(recs, func(shard int, sub []netflow.Record) {
		d.shardMu[shard].Lock()
		defer d.shardMu[shard].Unlock()
		if err := d.log.Append(ts, h, sub); err != nil {
			// Keep serving on the in-memory window; the gap means recovery
			// would under-replay, which the operator is told about.
			fmt.Fprintln(os.Stderr, "tierd: wal append:", err)
		}
		d.window.IngestShardAt(shard, ts, h, sub)
	})
}

// start launches the periodic checkpoint loop.
func (d *durability) start() {
	go func() {
		defer close(d.doneCh)
		ticker := time.NewTicker(d.interval)
		defer ticker.Stop()
		for {
			select {
			case <-d.stopCh:
				return
			case <-ticker.C:
				if err := d.checkpoint(); err != nil {
					fmt.Fprintln(os.Stderr, "tierd: checkpoint:", err)
				}
			}
		}
	}()
}

// checkpoint takes one snapshot: WAL position and window state are
// captured atomically under the exclusive side of the quiesce lock
// (draining all in-flight ingests first), framed with the serving
// epoch, current table, and history ring, written atomically, and old
// checkpoints and fully-covered WAL segments are pruned.
func (d *durability) checkpoint() error {
	d.mu.Lock()
	pos := d.log.Pos()
	ws := d.window.Export()
	d.mu.Unlock()

	st := &checkpoint.State{CreatedAt: d.now(), Tenant: d.tenantID, WAL: pos, Window: ws,
		ConfigEpoch: d.configEpoch()}
	if snap := d.repricer.Current(); snap != nil {
		st.Epoch = snap.Epoch
		table, err := snap.Table.Marshal()
		if err != nil {
			return fmt.Errorf("marshaling tier table: %w", err)
		}
		st.Table = table
	}
	if d.hist != nil {
		st.History = d.hist.checkpointEntries()
	}

	if _, err := checkpoint.Write(d.ckptDir, st); err != nil {
		return err
	}
	d.checkpoints.Add(1)
	d.lastCkptNano.Store(d.now().UnixNano())
	if err := checkpoint.Prune(d.ckptDir, d.retain); err != nil {
		return err
	}
	// Segments wholly before the covered position are now redundant.
	return d.log.TruncateBefore(pos)
}

// stats feeds the /metrics durability section.
func (d *durability) stats() server.DurabilityStats {
	ws := d.log.Stats()
	s := server.DurabilityStats{
		WALBytes:          ws.Bytes,
		WALEntries:        ws.Entries,
		WALFsyncs:         ws.Fsyncs,
		WALFsyncP50:       float64(ws.FsyncP50Ns) / 1e9,
		WALFsyncP99:       float64(ws.FsyncP99Ns) / 1e9,
		WALFsyncMax:       float64(ws.FsyncMaxNs) / 1e9,
		WALFsyncSum:       ws.FsyncSumNs / 1e9,
		Checkpoints:       d.checkpoints.Load(),
		CheckpointAge:     -1,
		RecoveryReplayed:  d.recoveryReplayed.Load(),
		RecoveryTornBytes: d.recoveryTornBytes.Load(),
	}
	if last := d.lastCkptNano.Load(); last > 0 {
		s.CheckpointAge = d.now().Sub(time.Unix(0, last)).Seconds()
	}
	return s
}

// close stops the checkpoint loop, takes a final checkpoint (covering
// everything the drain re-price saw), and closes the WAL. A clean
// shutdown therefore restarts instantly — the final checkpoint covers
// the whole log, leaving nothing to replay.
func (d *durability) close() error {
	close(d.stopCh)
	<-d.doneCh
	err := d.checkpoint()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// warmReprice publishes an initial snapshot from the recovered window
// so a warm restart serves quotes (and 200s on /healthz) immediately
// instead of waiting out the first re-price interval. An empty window
// (fresh data dir) is not an error — the daemon warms up normally.
func (d *durability) warmReprice(grace time.Duration) error {
	records, _, _, _ := d.window.Stats()
	if records == 0 {
		return nil
	}
	ctx := context.Background()
	if grace > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, grace)
		defer cancel()
	}
	snap, err := d.repricer.Reprice(ctx)
	if err != nil {
		return fmt.Errorf("warm re-price after recovery: %w", err)
	}
	if d.hist != nil {
		d.hist.record(snap)
	}
	return nil
}
