package main

// TestTierdChaos is the fault-injection acceptance test: a trace is
// replayed into a live daemon through a deterministic fault harness
// (dropped, duplicated and truncated datagrams; corrupt packets on the
// wire; a resolver outage; a frozen clock driving the window empty),
// while quote traffic hammers the HTTP API. The invariants: quoting
// never goes down (no 5xx, the last good snapshot keeps serving),
// /healthz flips to degraded exactly when the snapshot age crosses the
// staleness threshold, and the final snapshot is byte-identical to the
// batch pipeline run over the successfully-ingested records — which a
// shadow collector chained behind the fault sink observes exactly.
//
// The schedule derives entirely from one seed (CHAOS_SEED, default
// 4242), so a CI failure replays locally with the same environment.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/faultinject"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/traces"
)

// teeSink fans one decoded datagram out to both the daemon's window
// path and the shadow collector, after the fault sink has had its say.
type teeSink struct{ a, b netflow.Sink }

func (s teeSink) Ingest(h netflow.Header, recs []netflow.Record) {
	s.a.Ingest(h, recs)
	s.b.Ingest(h, recs)
}

func chaosSeed(t *testing.T) int64 {
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 4242
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED %q: %v", s, err)
	}
	return v
}

func TestTierdChaos(t *testing.T) {
	seed := chaosSeed(t)
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := writeTraceDir(t, ds, len(streams))

	const maxAge = 30 * time.Minute
	inj := faultinject.New(seed)
	clock := faultinject.NewClock(time.Now())
	shadow := netflow.NewCollector(traces.AggregateKey)
	var fsink *faultinject.Sink
	var frv *faultinject.Resolver
	cfg := config{
		listen: "127.0.0.1:0", udp: "127.0.0.1:0", trace: dir,
		model: "ced", alpha: 1.1, s0: 0.2, theta: 0.2,
		strategy: "profit-weighted", tiers: 3,
		window: 4 * time.Hour, slot: time.Hour, reprice: time.Hour,
		workers: 4, maxSnapAge: maxAge, drainGrace: 2 * time.Second,
		wrapSink: func(s netflow.Sink) netflow.Sink {
			fsink = faultinject.NewSink(inj, teeSink{a: s, b: shadow})
			fsink.DropPermille = 40
			fsink.DupPermille = 100
			fsink.TruncPermille = 80
			return fsink
		},
		wrapResolver: func(rv demandfit.EndpointResolver) demandfit.EndpointResolver {
			frv = faultinject.NewResolver(inj, rv)
			return frv
		},
		now: clock.Now,
	}
	d, err := startDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- d.run(ctx, strings.NewReader("")) }()
	base := "http://" + d.httpAddr()

	// tick mirrors the reprice loop's bookkeeping for manually-triggered
	// re-prices, so the /metrics assertions see what the ticker would
	// report.
	tick := func() error {
		snap, rerr := d.repricer.Reprice(context.Background())
		d.onTick(snap, 0, rerr)
		return rerr
	}
	metricsBody := func() string {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// --- Phase 1: faulted replay, plus corrupt datagrams on the wire.
	total := replayUDP(t, d.udpAddr(), streams)
	if err := d.udp.Drain(total, 10*time.Second); err != nil {
		t.Log(err) // UDP loss: both sides of the tee missed the datagram
	}
	conn, err := net.Dial("udp", d.udpAddr())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, bad := d.udp.Stats(); bad > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("corrupt datagrams were never counted")
		}
		if _, err := conn.Write([]byte("definitely not a netflow export")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	conn.Close()

	// The window must agree with the shadow collector on everything that
	// survived the faults: drops and truncations hit both identically,
	// and both de-duplicate the injected re-sends.
	deadline = time.Now().Add(10 * time.Second)
	for !demandMatches(d.window.Aggregates(), shadow.Aggregates()) {
		if time.Now().After(deadline) {
			t.Fatal("window diverged from the shadow collector behind the fault sink")
		}
		time.Sleep(5 * time.Millisecond)
	}
	dropped, duplicated, truncated := fsink.Stats()
	if dropped == 0 || duplicated == 0 || truncated == 0 {
		t.Fatalf("fault classes did not all fire over %d datagrams: drop=%d dup=%d trunc=%d",
			total, dropped, duplicated, truncated)
	}
	t.Logf("seed %d: %d datagrams, %d dropped, %d duplicated, %d truncated",
		seed, total, dropped, duplicated, truncated)

	// --- Phase 2: first re-price; parity with the batch pipeline on the
	// successfully-ingested records.
	if err := tick(); err != nil {
		t.Fatal(err)
	}
	rv := &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true}
	flows, _, err := demandfit.BuildFlows(shadow.Aggregates(), rv, ds.DurationSec)
	if err != nil {
		t.Fatal(err)
	}
	batchTable, err := stream.BatchTable(flows, econ.CED{Alpha: 1.1}, cost.Linear{Theta: 0.2},
		ds.P0, bundling.ProfitWeighted{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantTable, err := batchTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snap := d.repricer.Current()
	gotTable, err := snap.Table.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTable, wantTable) {
		t.Fatalf("online table diverges from batch over ingested records:\nonline: %s\nbatch:  %s",
			gotTable, wantTable)
	}
	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after first snapshot: %d, want 200", code)
	}

	// --- Phase 3: quote hammer. Targets are buckets the snapshot serves;
	// through every following fault they must answer 200, never 5xx.
	var targets []netflow.Aggregate
	for _, a := range shadow.Aggregates() {
		if _, ok := snap.Quote(a.SrcAddr, a.DstAddr); ok {
			targets = append(targets, a)
		}
	}
	if len(targets) == 0 {
		t.Fatal("no quotable buckets")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var quoteBad, healthBad atomic.Int64
	client := &http.Client{Timeout: 5 * time.Second}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ; i += 3 {
				select {
				case <-stop:
					return
				default:
				}
				a := targets[i%len(targets)]
				resp, err := client.Get(fmt.Sprintf("%s/v1/quote?src=%s&dst=%s", base, a.SrcAddr, a.DstAddr))
				if err != nil {
					quoteBad.Add(1)
					t.Errorf("quote request failed: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					quoteBad.Add(1)
					t.Errorf("quote %s>%s: status %d", a.SrcAddr, a.DstAddr, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(base + "/healthz")
			if err != nil {
				healthBad.Add(1)
				t.Errorf("healthz request failed: %v", err)
				return
			}
			resp.Body.Close()
			// Degraded (503) is a legitimate answer; anything else but OK
			// means health reporting itself broke.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				healthBad.Add(1)
				t.Errorf("healthz: status %d", resp.StatusCode)
				return
			}
		}
	}()

	// --- Phase 4: resolver outage. Re-prices fail, the serving snapshot
	// and epoch hold, the failure metrics climb.
	frv.SetOutage(true)
	for i := 0; i < 2; i++ {
		if err := tick(); err == nil {
			t.Fatal("re-price succeeded during resolver outage")
		}
	}
	frv.SetOutage(false)
	var tiersResp struct {
		Epoch int64 `json:"epoch"`
	}
	if code := getJSON(t, base+"/v1/tiers", &tiersResp); code != http.StatusOK {
		t.Fatalf("/v1/tiers during outage: status %d", code)
	}
	if tiersResp.Epoch != 1 {
		t.Fatalf("epoch = %d after failed re-prices, want 1", tiersResp.Epoch)
	}
	m := metricsBody()
	for _, want := range []string{
		"tierd_reprice_failures_total 2",
		"tierd_reprice_consecutive_failures 2",
		"tierd_snapshot_stale 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q after outage:\n%s", want, m)
		}
	}

	// --- Phase 5: staleness boundary. At exactly maxAge the snapshot is
	// not yet stale; one minute past it, /healthz degrades while /v1/quote
	// keeps answering with the stale marker.
	clock.Advance(maxAge)
	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz at the staleness boundary: %d, want 200", code)
	}
	clock.Advance(time.Minute)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz past the staleness boundary: %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(health), "degraded") {
		t.Fatalf("healthz body %q does not report degraded", health)
	}
	a := targets[0]
	resp, err = http.Get(fmt.Sprintf("%s/v1/quote?src=%s&dst=%s", base, a.SrcAddr, a.DstAddr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale quote: status %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Tierd-Stale") != "true" {
		t.Error("stale quote missing X-Tierd-Stale: true")
	}
	if resp.Header.Get("X-Tierd-Snapshot-Age") == "" {
		t.Error("stale quote missing X-Tierd-Snapshot-Age")
	}
	if !strings.Contains(metricsBody(), "tierd_snapshot_stale 1") {
		t.Error("metrics do not report the stale snapshot")
	}

	// --- Phase 6: empty-window stretch. The clock outruns the window
	// span, the re-price sees nothing, and the last snapshot still serves.
	clock.Advance(6 * time.Hour)
	if err := tick(); !errors.Is(err, stream.ErrEmptyWindow) {
		t.Fatalf("re-price over the expired window: %v, want ErrEmptyWindow", err)
	}
	if got := d.repricer.Current(); got != snap {
		t.Fatal("empty-window re-price displaced the serving snapshot")
	}
	if !strings.Contains(metricsBody(), "tierd_reprice_consecutive_failures 3") {
		t.Error("ingest gap not counted as a consecutive failure")
	}

	// --- Phase 7: drain. The hammer saw zero quote failures; shutdown
	// completes despite the empty window, and the final snapshot is still
	// the batch-parity one.
	close(stop)
	wg.Wait()
	if quoteBad.Load() != 0 || healthBad.Load() != 0 {
		t.Fatalf("serving faltered under chaos: %d bad quotes, %d bad health checks",
			quoteBad.Load(), healthBad.Load())
	}
	// Release pooled keep-alive connections so the server's bounded
	// shutdown is not held open by the test's own clients.
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	inj.Disable()
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after cancellation")
	}
	final := d.repricer.Current()
	if final.Epoch != 1 {
		t.Fatalf("final epoch = %d, want the retained first snapshot", final.Epoch)
	}
	finalTable, err := final.Table.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(finalTable, wantTable) {
		t.Fatalf("final snapshot diverges from the batch pipeline:\nfinal: %s\nbatch: %s",
			finalTable, wantTable)
	}
}
