package main

// Durable history + hot-reload acceptance tests.
//
// The recorder-level tests pin the store/ring contract: the in-memory
// ring is a strict cache of the store's newest entries (parity under
// random range queries), and the (tenant, epoch) append key makes
// history immune to double-append when a crash restores an older
// checkpoint. The daemon-level tests drive the zero-downtime reload
// path under concurrent quote load (run with -race in CI) and the
// out-of-process kill -9 + SIGHUP cycle against a real binary.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"tieredpricing/internal/histstore"
	"tieredpricing/internal/server"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/traces"
)

// fakeTableSnap fabricates a published snapshot whose table bytes are
// unique per (epoch, price), so first-writer-wins is observable.
func fakeTableSnap(epoch int64, price float64, at time.Time) *stream.Snapshot {
	return &stream.Snapshot{
		Epoch:    epoch,
		FittedAt: at,
		Table: stream.TierTable{
			Model: "ced", Strategy: "profit-weighted", P0: 1.5, Flows: int(epoch),
			Tiers: []stream.TierQuote{{Tier: 0, Price: price, Flows: 1, DemandMbps: 2}},
		},
	}
}

func openTestStore(t *testing.T, path string) histstore.Store {
	t.Helper()
	st, err := histstore.Open(path, histstore.Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// refFilterHistory is the reference since/until/limit semantics:
// inclusive epoch bounds (0 = unbounded), newest-limit kept,
// oldest-first order.
func refFilterHistory(all []server.HistoryEntry, since, until int64, limit int) []server.HistoryEntry {
	var out []server.HistoryEntry
	for _, e := range all {
		if since != 0 && e.Epoch < since {
			continue
		}
		if until != 0 && e.Epoch > until {
			continue
		}
		out = append(out, e)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

func histEntriesEqual(t *testing.T, label string, got, want []server.HistoryEntry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Epoch != w.Epoch || g.ConfigEpoch != w.ConfigEpoch || !g.At.Equal(w.At) ||
			string(g.Table) != string(w.Table) {
			t.Fatalf("%s: entry %d diverges:\ngot  %+v\nwant %+v", label, i, g, w)
		}
	}
}

// TestHistoryStoreRingParity is the store-vs-ring property test: after
// recording a long series, the ring must be exactly the store's newest
// window, and seeded random range queries against the store must match
// a reference filter over the full series.
func TestHistoryStoreRingParity(t *testing.T) {
	const total, ringMax = 600, 64
	store := openTestStore(t, filepath.Join(t.TempDir(), "history.db"))
	rec := newHistRecorder("default", ringMax, store, nil)
	base := time.Unix(1700000000, 0).UTC()

	var all []server.HistoryEntry
	for ep := int64(1); ep <= total; ep++ {
		snap := fakeTableSnap(ep, float64(ep)+0.25, base.Add(time.Duration(ep)*time.Second))
		rec.record(snap)
		table, err := snap.Table.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, server.HistoryEntry{
			At: snap.FittedAt, Epoch: ep, ConfigEpoch: 1, Table: json.RawMessage(table),
		})
	}

	full, err := rec.scan(server.HistoryQuery{})
	if err != nil {
		t.Fatal(err)
	}
	histEntriesEqual(t, "full store scan", full, all)

	// The ring is a strict cache of the store's newest ringMax entries.
	tail, err := rec.scan(server.HistoryQuery{Limit: ringMax})
	if err != nil {
		t.Fatal(err)
	}
	histEntriesEqual(t, "ring vs store tail", rec.snapshot(), tail)

	rnd := rand.New(rand.NewSource(recoverSeed(t)))
	for i := 0; i < 300; i++ {
		since := rnd.Int63n(total + 50)
		until := rnd.Int63n(total + 50)
		limit := rnd.Intn(ringMax + 20)
		got, err := rec.scan(server.HistoryQuery{Since: since, Until: until, Limit: limit})
		if err != nil {
			t.Fatalf("scan(since=%d until=%d limit=%d): %v", since, until, limit, err)
		}
		want := refFilterHistory(all, since, until, limit)
		histEntriesEqual(t, fmt.Sprintf("query since=%d until=%d limit=%d", since, until, limit), got, want)
	}
}

// TestHistoryRestoreDoubleAppend: a crash recovered from an OLDER
// checkpoint replays epochs the store already holds. The (tenant,
// epoch) append key must keep the first-written row for each — the
// series stays one row per epoch with the original bytes — and the
// dedup must hold across a store reopen (the crash-durable form).
func TestHistoryRestoreDoubleAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.db")
	store := openTestStore(t, path)
	base := time.Unix(1700000000, 0).UTC()
	at := func(ep int64) time.Time { return base.Add(time.Duration(ep) * time.Second) }

	// First life: epochs 1..10 published and stored.
	recA := newHistRecorder("default", 512, store, nil)
	for ep := int64(1); ep <= 10; ep++ {
		recA.record(fakeTableSnap(ep, float64(ep)+0.25, at(ep)))
	}

	// Crash; recovery loads a checkpoint from epoch 5. The restored ring
	// is backfilled into the store, and the repricer re-publishes epochs
	// 6..10 with (deliberately different) tables before moving on.
	older := recA.checkpointEntries()[:5]
	recB := newHistRecorder("default", 512, store, nil)
	recB.restore(older, 5)
	for ep := int64(6); ep <= 13; ep++ {
		recB.record(fakeTableSnap(ep, float64(ep)+100, at(ep)))
	}

	verify := func(st histstore.Store, label string) {
		t.Helper()
		rows, err := st.Scan("default", histstore.Query{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 13 {
			t.Fatalf("%s: %d rows, want 13 (one per epoch)", label, len(rows))
		}
		for i, row := range rows {
			wantEpoch := int64(i + 1)
			if row.Epoch != wantEpoch {
				t.Fatalf("%s: row %d has epoch %d, want %d", label, i, row.Epoch, wantEpoch)
			}
			var tbl struct {
				Tiers []struct {
					Price float64 `json:"price_usd_per_mbps_month"`
				} `json:"tiers"`
			}
			if err := json.Unmarshal(row.Table, &tbl); err != nil || len(tbl.Tiers) != 1 {
				t.Fatalf("%s: row %d table %s: %v", label, i, row.Table, err)
			}
			want := float64(wantEpoch) + 0.25 // the first-written row
			if wantEpoch > 10 {
				want = float64(wantEpoch) + 100 // only published in the second life
			}
			if tbl.Tiers[0].Price != want {
				t.Fatalf("%s: epoch %d kept price %v, want first-written %v",
					label, wantEpoch, tbl.Tiers[0].Price, want)
			}
		}
	}
	verify(store, "live store")
	if dupes := store.Stats().Dupes; dupes == 0 {
		t.Error("restore replay recorded no dupes — the idempotent path never ran")
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	verify(openTestStore(t, path), "reopened store")
}

// reloadTestConfig is the in-process daemon config for the reload
// tests: manual re-prices (huge interval), a tiny ring so /v1/history
// depth proves the store path, and a -config file under tmp.
func reloadTestConfig(traceDir, tmp string) config {
	return config{
		listen: "127.0.0.1:0", trace: traceDir,
		model: "ced", alpha: 1.1, s0: 0.2, theta: 0.2,
		strategy: "profit-weighted", tiers: 3,
		window: 4 * time.Hour, slot: time.Hour, reprice: time.Hour,
		workers: 4, drainGrace: 2 * time.Second,
		historyStore: filepath.Join(tmp, "history.db"),
		historyRing:  4,
		configFile:   filepath.Join(tmp, "pricing.json"),
	}
}

func writeConfigFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReloadUnderLoad drives hot reloads (direct calls and a real
// SIGHUP) while goroutines hammer the quote path: zero non-200
// responses, monotone config epochs in the store-backed history, and
// failed reloads leaving the config generation untouched. Run under
// -race this is also the reload/quote/reprice race test.
func TestReloadUnderLoad(t *testing.T) {
	seed := recoverSeed(t)
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	grams := traceDatagrams(t, streams)
	tmp := t.TempDir()
	cfg := reloadTestConfig(traceDir, tmp)
	writeConfigFile(t, cfg.configFile, `{"tiers": 3}`)

	d, err := startDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	defer d.histStore.Close()
	for _, g := range grams {
		d.sink.Ingest(g.h, g.recs)
	}
	doReprice := func() {
		t.Helper()
		start := time.Now()
		snap, err := d.repricer.Reprice(context.Background())
		d.onTick(snap, time.Since(start), err)
		if err != nil {
			t.Fatalf("reprice: %v", err)
		}
	}
	doReprice() // epoch 1 under config generation 1

	base := "http://" + d.httpAddr()
	quoteURL := fmt.Sprintf("%s/v1/quote?src=%s&dst=%s", base, ds.Meta[0].SrcIP, ds.Meta[0].DstPrefix.Addr().Next())
	tiersURL := base + "/v1/tiers"
	resp, err := http.Get(quoteURL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("quote warm-up: %v %+v", err, resp)
	}
	resp.Body.Close()

	// Quote load: four clients alternating quote and tiers for the whole
	// reload sequence. Every response must be a 200.
	var stopLoad atomic.Bool
	var non200, okReqs atomic.Int64
	var wg sync.WaitGroup
	urls := []string{quoteURL, tiersURL}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			for !stopLoad.Load() {
				resp, err := http.Get(u)
				if err != nil {
					non200.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					non200.Add(1)
				} else {
					okReqs.Add(1)
				}
			}
		}(urls[i%2])
	}

	// Six valid reloads (changing tier count and theta), each followed
	// by a re-price that publishes under the new generation.
	const reloads = 6
	for i := 0; i < reloads; i++ {
		tiers := 2 + i%4
		writeConfigFile(t, cfg.configFile, fmt.Sprintf(`{"tiers": %d, "theta": 0.2%d}`, tiers, i))
		if err := d.reloadConfig(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		doReprice()
		if got := len(d.repricer.Current().Table.Tiers); got != tiers {
			t.Fatalf("reload %d: snapshot has %d tiers, want %d", i, got, tiers)
		}
	}

	// Failed reloads must not move the generation: invalid value,
	// unknown key, and unparseable JSON.
	epochBefore := d.reload.epoch()
	for _, bad := range []string{`{"tiers": 0}`, `{"bogus": 1}`, `{`} {
		writeConfigFile(t, cfg.configFile, bad)
		if err := d.reloadConfig(); err == nil {
			t.Fatalf("reload of %q succeeded, want error", bad)
		}
	}
	if got := d.reload.epoch(); got != epochBefore {
		t.Fatalf("failed reloads moved the config epoch %d -> %d", epochBefore, got)
	}

	// The real signal path: SIGHUP on the watcher must reload too.
	stopWatcher := d.startReloadWatcher()
	defer stopWatcher()
	writeConfigFile(t, cfg.configFile, `{"tiers": 3}`)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.reload.stats().Reloads != reloads+1 {
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never landed (stats %+v)", d.reload.stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	stopLoad.Store(true)
	wg.Wait()
	if n := non200.Load(); n != 0 {
		t.Errorf("%d non-200 quote responses across reloads (%d OK)", n, okReqs.Load())
	}
	if okReqs.Load() == 0 {
		t.Error("load generator made no successful requests")
	}

	// History is store-backed (deeper than the 4-entry ring) and its
	// config epochs are monotone, ending at the last re-priced
	// generation.
	var hist struct {
		Entries []struct {
			Epoch       int64 `json:"epoch"`
			ConfigEpoch int64 `json:"config_epoch"`
		} `json:"entries"`
	}
	if code := getJSON(t, base+"/v1/history", &hist); code != http.StatusOK {
		t.Fatalf("/v1/history: %d", code)
	}
	if len(hist.Entries) != reloads+1 {
		t.Fatalf("history has %d entries, want %d (one per published epoch)", len(hist.Entries), reloads+1)
	}
	if len(hist.Entries) <= cfg.historyRing {
		t.Fatalf("history depth %d does not exceed the ring (%d) — store path unused", len(hist.Entries), cfg.historyRing)
	}
	var prev int64
	for i, e := range hist.Entries {
		if e.ConfigEpoch < prev {
			t.Fatalf("config epochs regress at entry %d: %d after %d", i, e.ConfigEpoch, prev)
		}
		prev = e.ConfigEpoch
	}
	if prev != reloads+1 {
		t.Errorf("last history entry has config epoch %d, want %d", prev, reloads+1)
	}

	// The /metrics view agrees: epoch = 1 boot + 6 loop reloads + 1
	// SIGHUP; three failed reloads counted.
	checks := map[string]float64{
		"tierd_config_epoch":               float64(reloads + 2),
		"tierd_config_reloads_total":       float64(reloads + 1),
		"tierd_config_reload_errors_total": 3,
		"tierd_history_entries":            float64(reloads + 1),
	}
	for name, want := range checks {
		if got, ok := metricValue(t, d.httpAddr(), name); !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", name, got, ok, want)
		}
	}
}

// TestFleetHistoryNamespacing: a fleet shares ONE history store,
// namespaced by tenant, and a hot reload is all-or-nothing across
// tenants with a single process-wide config epoch.
func TestFleetHistoryNamespacing(t *testing.T) {
	seed := recoverSeed(t)
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	grams := traceDatagrams(t, streams)
	tmp := t.TempDir()
	specPath := writeSpecFile(t, tmp, `{"tenants": [
		{"id": "net-a", "routers": [1]},
		{"id": "net-b", "routers": [2]}
	]}`)
	cfg := fleetConfig(traceDir, specPath)
	cfg.historyStore = filepath.Join(tmp, "history.db")
	cfg.historyRing = 4
	cfg.configFile = filepath.Join(tmp, "pricing.json")
	writeConfigFile(t, cfg.configFile, `{}`)

	h := startFleetHarness(t, cfg)
	h.ingestAs(1, grams)
	h.ingestAs(2, grams)
	h.waitTenantServing(t, "net-a")
	h.waitTenantServing(t, "net-b")

	// Let both tenants publish past the ring depth, then reload.
	base := "http://" + h.d.httpAddr()
	waitEpoch := func(id string, min int64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			var tr struct {
				Epoch int64 `json:"epoch"`
			}
			if code := getJSON(t, base+"/v1/t/"+id+"/tiers", &tr); code == http.StatusOK && tr.Epoch >= min {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("tenant %s never reached epoch %d", id, min)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitEpoch("net-a", 6)
	waitEpoch("net-b", 6)

	if got := h.d.histStore.Tenants(); len(got) != 2 || got[0] != "net-a" || got[1] != "net-b" {
		t.Fatalf("store tenants = %v, want [net-a net-b]", got)
	}
	for _, id := range []string{"net-a", "net-b"} {
		var hist struct {
			Entries []struct {
				Epoch int64 `json:"epoch"`
			} `json:"entries"`
		}
		if code := getJSON(t, base+"/v1/t/"+id+"/history", &hist); code != http.StatusOK {
			t.Fatalf("tenant %s history: %d", id, code)
		}
		if len(hist.Entries) <= cfg.historyRing {
			t.Fatalf("tenant %s history depth %d does not exceed the ring (%d)", id, len(hist.Entries), cfg.historyRing)
		}
		for i, e := range hist.Entries {
			if e.Epoch != int64(i)+1 {
				t.Fatalf("tenant %s history entry %d has epoch %d — cross-tenant bleed or gap", id, i, e.Epoch)
			}
		}
	}

	// Process-wide reload: one epoch bump covers both tenants.
	writeConfigFile(t, cfg.configFile, `{"theta": 0.21}`)
	if err := h.d.reloadConfig(); err != nil {
		t.Fatal(err)
	}
	if got := h.d.reload.epoch(); got != 2 {
		t.Fatalf("config epoch %d after fleet reload, want 2", got)
	}
	for _, id := range []string{"net-a", "net-b"} {
		deadline := time.Now().Add(30 * time.Second)
		for {
			var hist struct {
				Entries []struct {
					ConfigEpoch int64 `json:"config_epoch"`
				} `json:"entries"`
			}
			getJSON(t, base+"/v1/t/"+id+"/history", &hist)
			if n := len(hist.Entries); n > 0 && hist.Entries[n-1].ConfigEpoch == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tenant %s never published under config epoch 2", id)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// All-or-nothing: a spec-level failure for any tenant rejects the
	// reload for all, leaving the epoch untouched.
	writeConfigFile(t, cfg.configFile, `{"strategy": "no-such-strategy"}`)
	if err := h.d.reloadConfig(); err == nil {
		t.Fatal("reload with a bogus strategy succeeded")
	}
	if got := h.d.reload.epoch(); got != 2 {
		t.Fatalf("failed fleet reload moved the config epoch to %d", got)
	}
}

// TestTierdHistoryKill9Reload is the out-of-process cycle: a real
// tierd with -history-store and -config ingests over UDP, hot-reloads
// on a real SIGHUP, is SIGKILLed, and restarts. The restarted
// /v1/history must still serve the full series from the store —
// including epochs that fell out of both the ring and checkpoint
// retention — with the config-epoch step preserved, and the restore
// replay must dedup instead of double-appending.
func TestTierdHistoryKill9Reload(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	seed := recoverSeed(t)
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "tierd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building tierd: %v\n%s", err, out)
	}
	cfgPath := filepath.Join(tmp, "pricing.json")
	writeConfigFile(t, cfgPath, `{"tiers": 3}`)

	args := []string{
		"-trace", traceDir, "-listen", "127.0.0.1:0", "-udp", "127.0.0.1:0",
		"-data-dir", filepath.Join(tmp, "data"), "-reprice", "250ms",
		"-window", "4h", "-slot", "1h", "-checkpoint-interval", "400ms",
		"-history-store", filepath.Join(tmp, "history.db"), "-history-ring", "4",
		"-config", cfgPath,
	}
	cmd, httpAddr, udpAddr := startTierd(t, bin, args...)
	killed := false
	defer func() {
		if !killed && cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	replayUDP(t, udpAddr, streams)

	waitMetric := func(addr, name string, min float64) float64 {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			if v, ok := metricValue(t, addr, name); ok && v >= min {
				return v
			}
			if time.Now().After(deadline) {
				v, _ := metricValue(t, addr, name)
				t.Fatalf("%s never reached %v (at %v)", name, min, v)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	// Publish past the ring depth under generation 1, then SIGHUP.
	waitMetric(httpAddr, "tierd_snapshot_epoch", 6)
	ckpts, _ := metricValue(t, httpAddr, "tierd_checkpoints_total")
	writeConfigFile(t, cfgPath, `{"tiers": 4}`)
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitMetric(httpAddr, "tierd_config_epoch", 2)
	// A couple of epochs under generation 2, and checkpoints that frame
	// it (so the restore proves the epoch survives).
	epochAtReload := waitMetric(httpAddr, "tierd_snapshot_epoch", 1)
	waitMetric(httpAddr, "tierd_snapshot_epoch", epochAtReload+2)
	waitMetric(httpAddr, "tierd_checkpoints_total", ckpts+2)
	preCrash := waitMetric(httpAddr, "tierd_snapshot_epoch", 1)

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	cmd2, httpAddr2, _ := startTierd(t, bin, args...)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			cmd2.Process.Kill()
			cmd2.Wait()
		}
	}()
	waitHealthy(t, httpAddr2, 30*time.Second)

	// The config generation survived the crash via the checkpoint.
	if v, ok := metricValue(t, httpAddr2, "tierd_config_epoch"); !ok || v != 2 {
		t.Errorf("restarted tierd_config_epoch = %v (present %v), want 2", v, ok)
	}
	// The checkpoint-ring backfill re-appended rows the store already
	// had; the (tenant, epoch) key absorbed them.
	if v, ok := metricValue(t, httpAddr2, "tierd_history_dupes_total"); !ok || v == 0 {
		t.Errorf("tierd_history_dupes_total = %v (present %v), want > 0 (idempotent restore replay)", v, ok)
	}

	var hist struct {
		Entries []struct {
			Epoch       int64 `json:"epoch"`
			ConfigEpoch int64 `json:"config_epoch"`
		} `json:"entries"`
	}
	if code := getJSON(t, "http://"+httpAddr2+"/v1/history", &hist); code != http.StatusOK {
		t.Fatalf("/v1/history after restart: %d", code)
	}
	if len(hist.Entries) == 0 || hist.Entries[0].Epoch != 1 {
		t.Fatalf("history lost its oldest epochs after restart: %+v", hist.Entries[:min(3, len(hist.Entries))])
	}
	if int64(len(hist.Entries)) < int64(preCrash) {
		t.Errorf("history has %d entries after restart, want at least the %v pre-crash epochs",
			len(hist.Entries), preCrash)
	}
	var sawGen2 bool
	var prevEpoch, prevCfg int64
	for i, e := range hist.Entries {
		if e.Epoch <= prevEpoch {
			t.Fatalf("history epochs not strictly increasing at %d: %d after %d", i, e.Epoch, prevEpoch)
		}
		if e.ConfigEpoch < prevCfg {
			t.Fatalf("config epochs regress at %d: %d after %d", i, e.ConfigEpoch, prevCfg)
		}
		prevEpoch, prevCfg = e.Epoch, e.ConfigEpoch
		if e.ConfigEpoch >= 2 {
			sawGen2 = true
		}
	}
	if hist.Entries[0].ConfigEpoch != 1 || !sawGen2 {
		t.Errorf("history does not show the generation step (first %d, saw gen2 %v)",
			hist.Entries[0].ConfigEpoch, sawGen2)
	}
	// Range queries hit the store too: the oldest two epochs are long
	// gone from the ring and every retained checkpoint.
	var oldest struct {
		Entries []struct {
			Epoch int64 `json:"epoch"`
		} `json:"entries"`
	}
	if code := getJSON(t, "http://"+httpAddr2+"/v1/history?since=1&until=2", &oldest); code != http.StatusOK {
		t.Fatalf("/v1/history?since=1&until=2: %d", code)
	}
	if len(oldest.Entries) != 2 || oldest.Entries[0].Epoch != 1 || oldest.Entries[1].Epoch != 2 {
		t.Fatalf("ranged query over expired epochs returned %+v, want epochs [1 2]", oldest.Entries)
	}
	fmt.Fprintf(os.Stderr, "history kill9: %d entries survived restart (pre-crash epoch %v)\n",
		len(hist.Entries), preCrash)
}
