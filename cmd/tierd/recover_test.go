package main

// Crash-recovery acceptance tests. TestRecoveryParity is the in-process
// matrix: one daemon ingests a trace with checkpoints taken mid-stream,
// "crashes" (is abandoned without a clean shutdown, optionally with its
// on-disk state damaged the way a crash would), and a second daemon
// recovers from the same data dir. The recovered window must be
// byte-identical — exported state and tier table — to an uninterrupted
// shadow run over exactly the datagrams the durable state holds
// (checkpoint coverage + WAL-tail replay). TestTierdKill9Recovery is
// the out-of-process variant: a real tierd process SIGKILLed at a
// seeded random point, restarted, and diffed against a shadow built by
// replaying the surviving WAL.
//
// The schedule derives from one seed (RECOVER_SEED, default 4242), the
// same contract as the chaos stage: a CI failure replays locally.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/checkpoint"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/faultinject"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/traces"
	"tieredpricing/internal/wal"
)

func recoverSeed(t *testing.T) int64 {
	s := os.Getenv("RECOVER_SEED")
	if s == "" {
		return 4242
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("RECOVER_SEED %q: %v", s, err)
	}
	return v
}

// datagram is one export packet with the arrival instant it was (or
// will be) ingested at.
type datagram struct {
	ts   time.Time
	h    netflow.Header
	recs []netflow.Record
}

// traceDatagrams decodes every router stream into individual datagrams
// in the deterministic replay order.
func traceDatagrams(t *testing.T, streams map[string][]byte) []datagram {
	t.Helper()
	var out []datagram
	for _, router := range sortedRouters(streams) {
		rd := netflow.NewReader(bytes.NewReader(streams[router]))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			cp := make([]netflow.Record, len(recs))
			copy(cp, recs)
			out = append(out, datagram{h: h, recs: cp})
		}
	}
	return out
}

// recoverConfig is the shared daemon config for the parity matrix: a
// frozen clock, hour slots (nothing evicts mid-test), manual
// checkpoints (interval far beyond the test), one large WAL segment.
func recoverConfig(trace, dataDir string, now func() time.Time) config {
	return config{
		listen: "127.0.0.1:0", trace: trace,
		model: "ced", alpha: 1.1, s0: 0.2, theta: 0.2,
		strategy: "profit-weighted", tiers: 3,
		window: 4 * time.Hour, slot: time.Hour, reprice: time.Hour,
		workers: 4, drainGrace: 5 * time.Second,
		dataDir: dataDir, ckptInterval: time.Hour, ckptRetain: 3,
		walSync: wal.SyncBatch, walSegBytes: 64 << 20,
		now: now,
	}
}

// shadowTable prices a window the batch way the repricer would: same
// resolver, models and strategy over the same aggregates.
func shadowTable(t *testing.T, ds *traces.Dataset, w stream.AggregateSource, now func() time.Time) []byte {
	t.Helper()
	rp, err := stream.NewRepricer(stream.Config{
		Window:      w,
		Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          ds.P0,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       3,
		DurationSec: ds.DurationSec,
		Workers:     4,
		Now:         now,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	table, err := snap.Table.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// exportJSON serializes a window state for byte comparison; it accepts
// the plain and the sharded window alike, whose canonical exports are
// byte-identical for the same traffic.
func exportJSON(t *testing.T, w interface{ Export() stream.WindowState }) []byte {
	t.Helper()
	b, err := json.Marshal(w.Export())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRecoveryParity(t *testing.T) {
	seed := recoverSeed(t)
	for _, fault := range []string{"clean", "torn-tail", "corrupt-tail", "corrupt-ckpt"} {
		t.Run(fault, func(t *testing.T) { runRecoveryParity(t, seed, fault) })
	}
}

func runRecoveryParity(t *testing.T, seed int64, fault string) {
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	dataDir := t.TempDir()
	grams := traceDatagrams(t, streams)
	if len(grams) < 6 {
		t.Fatalf("trace too small: %d datagrams", len(grams))
	}

	clock := faultinject.NewClock(time.Unix(1700000000, 0))
	d, err := startDaemon(recoverConfig(traceDir, dataDir, clock.Now))
	if err != nil {
		t.Fatal(err)
	}

	// Ingest in three phases an hour apart (three window slots), with a
	// checkpoint after each of the first two — the second one taken
	// after a re-price so it carries an epoch and a tier table. Record
	// the arrival timestamp of each datagram and the entry count each
	// checkpoint covers.
	coveredBy := map[wal.Position]int{} // WAL position → entries covered
	third := len(grams) / 3
	ingest := func(from, to int) {
		for i := from; i < to; i++ {
			grams[i].ts = clock.Now()
			d.sink.Ingest(grams[i].h, grams[i].recs)
		}
	}
	ingest(0, third)
	if err := d.durable.checkpoint(); err != nil {
		t.Fatal(err)
	}
	coveredBy[d.durable.log.Pos()] = third

	clock.Advance(time.Hour)
	ingest(third, 2*third)
	if _, err := d.repricer.Reprice(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := d.durable.checkpoint(); err != nil {
		t.Fatal(err)
	}
	c2pos := d.durable.log.Pos()
	coveredBy[c2pos] = 2 * third

	clock.Advance(time.Hour)
	ingest(2*third, len(grams))

	// Crash: abandon the daemon without a clean shutdown (no final
	// checkpoint, no WAL close — the on-disk state is whatever the
	// appends left), then damage the survivors per the fault class.
	if err := d.durable.log.Sync(); err != nil {
		t.Fatal(err)
	}
	d.close()

	walDir := filepath.Join(dataDir, "wal")
	ckptDir := filepath.Join(dataDir, "checkpoint")
	inj := faultinject.New(seed)
	switch fault {
	case "clean":
	case "torn-tail":
		segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
		if err != nil || len(segs) != 1 {
			t.Fatalf("wal segments: %v %v", segs, err)
		}
		if torn, err := inj.NewSite(1).TearTail(segs[0], c2pos.Offset); err != nil || !torn {
			t.Fatalf("TearTail: %v %v", torn, err)
		}
	case "corrupt-tail":
		segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
		if err != nil || len(segs) != 1 {
			t.Fatalf("wal segments: %v %v", segs, err)
		}
		if hit, err := inj.NewSite(2).CorruptByte(segs[0], c2pos.Offset); err != nil || !hit {
			t.Fatalf("CorruptByte: %v %v", hit, err)
		}
	case "corrupt-ckpt":
		// Damage the newest checkpoint; recovery must fall back to the
		// first one and replay the longer WAL tail.
		ckpts, err := filepath.Glob(filepath.Join(ckptDir, "checkpoint-*.ckpt"))
		if err != nil || len(ckpts) != 2 {
			t.Fatalf("checkpoints: %v %v", ckpts, err)
		}
		if hit, err := inj.NewSite(3).CorruptByte(ckpts[len(ckpts)-1], 0); err != nil || !hit {
			t.Fatalf("CorruptByte: %v %v", hit, err)
		}
	default:
		t.Fatalf("unknown fault %q", fault)
	}

	// The checkpoint recovery will load (after the fault) tells us how
	// many entries its window already contains.
	loaded, _, err := checkpoint.LoadNewest(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("no loadable checkpoint")
	}
	covered, ok := coveredBy[loaded.WAL]
	if !ok {
		t.Fatalf("recovery would load an unexpected checkpoint position %+v", loaded.WAL)
	}
	if fault == "corrupt-ckpt" && covered != third {
		t.Fatalf("corrupt-ckpt fallback covered %d entries, want %d", covered, third)
	}

	// Restart from the same data dir.
	d2, err := startDaemon(recoverConfig(traceDir, dataDir, clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		d2.durable.log.Close()
		d2.close()
	}()
	applied := covered + int(d2.durable.recoveryReplayed.Load())
	if applied < covered || applied > len(grams) {
		t.Fatalf("recovery applied %d entries (covered %d, total %d)", applied, covered, len(grams))
	}
	if fault == "clean" && applied != len(grams) {
		t.Fatalf("clean recovery applied %d entries, want all %d", applied, len(grams))
	}

	// Parity: an uninterrupted shadow run over exactly the entries the
	// durable state holds must export the identical window state and
	// price the identical table.
	shadow, err := stream.NewWindow(traces.AggregateKey, time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	shadow.SetClock(clock.Now)
	for i := 0; i < applied; i++ {
		shadow.IngestAt(grams[i].ts, grams[i].h, grams[i].recs)
	}
	gotState, wantState := exportJSON(t, d2.window), exportJSON(t, shadow)
	if !bytes.Equal(gotState, wantState) {
		t.Fatalf("recovered window state diverges from uninterrupted shadow (%d vs %d bytes)", len(gotState), len(wantState))
	}

	snap := d2.repricer.Current()
	if snap == nil {
		t.Fatal("no snapshot after warm restart")
	}
	gotTable, err := snap.Table.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if wantTable := shadowTable(t, ds, shadow, clock.Now); !bytes.Equal(gotTable, wantTable) {
		t.Fatalf("recovered tier table diverges:\ngot  %s\nwant %s", gotTable, wantTable)
	}

	// Epoch continuity: the warm snapshot continues the checkpointed
	// sequence instead of restarting from 1.
	if snap.Epoch != loaded.Epoch+1 {
		t.Errorf("warm snapshot epoch %d, want %d", snap.Epoch, loaded.Epoch+1)
	}

	if fault != "clean" {
		return
	}
	// Second cycle (clean only): the recovered daemon keeps appending,
	// checkpoints, crashes again, and a third daemon still reaches
	// parity — recovery is not a one-shot.
	clock.Advance(time.Hour)
	extra := grams[:third]
	base := len(grams)
	all := append(append([]datagram{}, grams...), make([]datagram, len(extra))...)
	for i, g := range extra {
		g.ts = clock.Now()
		all[base+i] = datagram{ts: g.ts, h: g.h, recs: g.recs}
		d2.sink.Ingest(g.h, g.recs)
	}
	if err := d2.durable.checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d2.durable.log.Sync(); err != nil {
		t.Fatal(err)
	}
	d3, err := startDaemon(recoverConfig(traceDir, dataDir, clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		d3.durable.log.Close()
		d3.close()
	}()
	shadow2, err := stream.NewWindow(traces.AggregateKey, time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	shadow2.SetClock(clock.Now)
	for _, g := range all {
		shadow2.IngestAt(g.ts, g.h, g.recs)
	}
	if !bytes.Equal(exportJSON(t, d3.window), exportJSON(t, shadow2)) {
		t.Fatal("second recovery cycle diverges from shadow")
	}
}

// startTierd launches a tierd binary and parses its serving line.
func startTierd(t *testing.T, bin string, args ...string) (*exec.Cmd, string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan [2]string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "tierd: serving http://") {
				rest := strings.TrimPrefix(line, "tierd: serving http://")
				httpAddr, udpPart, _ := strings.Cut(rest, ", ingesting udp ")
				select {
				case addrCh <- [2]string{strings.TrimSpace(httpAddr), strings.TrimSpace(udpPart)}:
				default:
				}
			}
		}
	}()
	select {
	case addrs := <-addrCh:
		return cmd, addrs[0], addrs[1]
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("tierd did not report its serving address")
		return nil, "", ""
	}
}

// metricValue scrapes one un-labeled metric from /metrics.
func metricValue(t *testing.T, httpAddr, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			if err != nil {
				t.Fatalf("parsing %s: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

// TestTierdKill9Recovery is the out-of-process crash test: a real tierd
// with -data-dir is fed a trace over UDP, SIGKILLed at a seeded random
// point after its first checkpoint, and restarted. The restarted
// daemon's /v1/tiers must be byte-identical to a shadow run over the
// WAL's surviving contents — the durable ground truth of what the dead
// process had accepted.
func TestTierdKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	seed := recoverSeed(t)
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	tmp := t.TempDir()
	dataDir := filepath.Join(tmp, "data")
	bin := filepath.Join(tmp, "tierd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tierd: %v\n%s", err, out)
	}

	args := []string{
		"-trace", traceDir, "-listen", "127.0.0.1:0", "-udp", "127.0.0.1:0",
		"-data-dir", dataDir, "-reprice", "300ms", "-window", "4h", "-slot", "1h",
		"-checkpoint-interval", "400ms", "-wal-sync", "batch",
	}
	cmd, httpAddr, udpAddr := startTierd(t, bin, args...)
	killed := false
	defer func() {
		if !killed && cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	replayUDP(t, udpAddr, streams)

	// Wait for the ingest to quiesce (the WAL holds what got through),
	// at least one checkpoint, and a published snapshot — then kill -9
	// at a seeded random point.
	deadline := time.Now().Add(30 * time.Second)
	var lastRecords float64
	for {
		recs, ok1 := metricValue(t, httpAddr, "tierd_ingest_records_total")
		ckpts, ok2 := metricValue(t, httpAddr, "tierd_checkpoints_total")
		epoch, ok3 := metricValue(t, httpAddr, "tierd_snapshot_epoch")
		if ok1 && ok2 && ok3 && recs > 0 && recs == lastRecords && ckpts >= 1 && epoch >= 1 {
			break
		}
		lastRecords = recs
		if time.Now().After(deadline) {
			t.Fatalf("daemon never quiesced (records %v, checkpoints %v)", recs, ckpts)
		}
		time.Sleep(200 * time.Millisecond)
	}
	// A second burst right before the kill usually lands entries after
	// the last checkpoint, so the restart exercises WAL-tail replay (the
	// window de-duplicates the repeats; the WAL logs them faithfully).
	replayUDP(t, udpAddr, streams)
	killDelay := time.Duration(uint64(seed)*2654435761%200) * time.Millisecond
	time.Sleep(killDelay)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// Shadow: an uninterrupted run over the WAL's surviving contents.
	shadow, err := stream.NewWindow(traces.AggregateKey, time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wal.Replay(filepath.Join(dataDir, "wal"), wal.Position{},
		func(ts time.Time, h netflow.Header, recs []netflow.Record) error {
			shadow.IngestAt(ts, h, recs)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries == 0 {
		t.Fatal("WAL is empty after the kill")
	}
	wantTable := shadowTable(t, ds, shadow, nil)

	// Restart on the same data dir: recovery must publish a snapshot
	// before serving, so the first /v1/tiers already matches.
	cmd2, httpAddr2, _ := startTierd(t, bin, args...)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			cmd2.Process.Kill()
			cmd2.Wait()
		}
	}()

	deadline = time.Now().Add(15 * time.Second)
	var healthResp *http.Response
	for {
		healthResp, err = http.Get("http://" + httpAddr2 + "/healthz")
		if err == nil && healthResp.StatusCode == http.StatusOK {
			break
		}
		if healthResp != nil {
			healthResp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted daemon never became healthy")
		}
		time.Sleep(100 * time.Millisecond)
	}
	if got := healthResp.Header.Get("X-Tierd-Build"); got == "" {
		t.Error("healthz has no X-Tierd-Build header")
	}
	healthResp.Body.Close()

	var tiersResp struct {
		Table json.RawMessage `json:"table"`
	}
	if code := getJSON(t, "http://"+httpAddr2+"/v1/tiers", &tiersResp); code != http.StatusOK {
		t.Fatalf("/v1/tiers after restart: %d", code)
	}
	if !bytes.Equal([]byte(tiersResp.Table), wantTable) {
		t.Fatalf("restarted /v1/tiers diverges from WAL shadow:\ngot  %s\nwant %s", tiersResp.Table, wantTable)
	}

	if replayed, ok := metricValue(t, httpAddr2, "tierd_recovery_replayed_total"); !ok {
		t.Error("metrics missing tierd_recovery_replayed_total")
	} else if replayed == 0 {
		// A kill between checkpoint and the next append can legitimately
		// leave nothing to replay, but with continuous ingest it should
		// be rare under every pinned seed; flag it for visibility.
		t.Logf("recovery replayed 0 entries (checkpoint covered the whole WAL)")
	}
	var histResp struct {
		Entries []struct {
			Epoch int64           `json:"epoch"`
			Table json.RawMessage `json:"table"`
		} `json:"entries"`
	}
	if code := getJSON(t, "http://"+httpAddr2+"/v1/history", &histResp); code != http.StatusOK {
		t.Fatalf("/v1/history: %d", code)
	}
	if len(histResp.Entries) == 0 {
		t.Error("/v1/history empty after recovery")
	}
	fmt.Fprintf(os.Stderr, "kill9: %d WAL entries survived, killDelay %v, history %d entries\n",
		res.Entries, killDelay, len(histResp.Entries))
}
