package main

// Shard-count acceptance tests: the daemon's externally visible state —
// /v1/tiers, the exported window — must be byte-identical at every
// -ingest-shards setting, to each other and to the batch pipeline, and
// durable state written at one shard count must restore at any other.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tieredpricing/internal/faultinject"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/traces"
)

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTierdShardParity(t *testing.T) {
	ds, err := traces.EUISP(71)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	grams := traceDatagrams(t, streams)
	clock := faultinject.NewClock(time.Unix(1_700_000_000, 0))

	// Shadow: the plain single-lock window fed the same datagrams at the
	// same instants, priced the batch way.
	shadow, err := stream.NewWindow(traces.AggregateKey, time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	shadow.SetClock(clock.Now)
	for i := range grams {
		grams[i].ts = clock.Now()
		shadow.IngestAt(grams[i].ts, grams[i].h, grams[i].recs)
	}
	wantState := exportJSON(t, shadow)
	wantTable := shadowTable(t, ds, shadow, clock.Now)

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := config{
				listen: "127.0.0.1:0", udp: "127.0.0.1:0", trace: traceDir,
				model: "ced", alpha: 1.1, s0: 0.2, theta: 0.2,
				strategy: "profit-weighted", tiers: 3,
				window: 4 * time.Hour, slot: time.Hour, reprice: time.Hour,
				workers: 4, ingestShards: shards,
				now: clock.Now,
			}
			d, err := startDaemon(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			runErr := make(chan error, 1)
			go func() { runErr <- d.run(ctx, strings.NewReader("")) }()

			for _, g := range grams {
				d.sink.Ingest(g.h, g.recs)
			}
			if got := exportJSON(t, d.window); !bytes.Equal(got, wantState) {
				t.Error("window state diverges from the single-lock shadow")
			}
			if _, err := d.repricer.Reprice(context.Background()); err != nil {
				t.Fatal(err)
			}

			var tiersResp struct {
				Table json.RawMessage `json:"table"`
			}
			if code := getJSON(t, "http://"+d.httpAddr()+"/v1/tiers", &tiersResp); code != http.StatusOK {
				t.Fatalf("/v1/tiers: status %d", code)
			}
			if !bytes.Equal([]byte(tiersResp.Table), wantTable) {
				t.Fatalf("/v1/tiers at shards=%d diverges from batch pipeline:\ngot  %s\nwant %s",
					shards, tiersResp.Table, wantTable)
			}

			// The per-shard ingest counters are exposed and account for
			// every record the window accepted.
			resp, err := http.Get("http://" + d.httpAddr() + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < shards; s++ {
				if want := fmt.Sprintf(`tierd_ingest_shard_records_total{shard="%d"}`, s); !strings.Contains(string(body), want) {
					t.Errorf("metrics missing %s", want)
				}
			}
			if !strings.Contains(string(body), "tierd_ingest_socket_drops_total") {
				t.Error("metrics missing tierd_ingest_socket_drops_total")
			}

			cancel()
			select {
			case err := <-runErr:
				if err != nil {
					t.Fatalf("run: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("daemon did not drain after cancellation")
			}
		})
	}
}

// TestRecoveryShardCount restarts a durable daemon at a different
// -ingest-shards than wrote the state: checkpoints are canonical merged
// window state, so any shard count restores any other's data dir.
func TestRecoveryShardCount(t *testing.T) {
	for _, tc := range []struct{ before, after int }{{1, 4}, {4, 1}, {2, 8}} {
		t.Run(fmt.Sprintf("%d_to_%d", tc.before, tc.after), func(t *testing.T) {
			runRecoveryShardCount(t, tc.before, tc.after)
		})
	}
}

func runRecoveryShardCount(t *testing.T, before, after int) {
	ds, err := traces.EUISP(73)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	dataDir := t.TempDir()
	grams := traceDatagrams(t, streams)
	clock := faultinject.NewClock(time.Unix(1_700_000_000, 0))

	cfg := recoverConfig(traceDir, dataDir, clock.Now)
	cfg.ingestShards = before
	d, err := startDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Two thirds before a checkpoint, the rest left in the WAL tail, so
	// recovery exercises both the checkpoint import re-hash and replay.
	two := 2 * len(grams) / 3
	for i := 0; i < two; i++ {
		grams[i].ts = clock.Now()
		d.sink.Ingest(grams[i].h, grams[i].recs)
	}
	if _, err := d.repricer.Reprice(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := d.durable.checkpoint(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	for i := two; i < len(grams); i++ {
		grams[i].ts = clock.Now()
		d.sink.Ingest(grams[i].h, grams[i].recs)
	}
	// Crash without a clean shutdown (no final checkpoint, no WAL close).
	if err := d.durable.log.Sync(); err != nil {
		t.Fatal(err)
	}
	d.close()

	cfg2 := recoverConfig(traceDir, dataDir, clock.Now)
	cfg2.ingestShards = after
	d2, err := startDaemon(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		d2.durable.log.Close()
		d2.close()
	}()

	shadow, err := stream.NewWindow(traces.AggregateKey, time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	shadow.SetClock(clock.Now)
	for _, g := range grams {
		shadow.IngestAt(g.ts, g.h, g.recs)
	}
	if !bytes.Equal(exportJSON(t, d2.window), exportJSON(t, shadow)) {
		t.Fatalf("window recovered at shards=%d from shards=%d state diverges from shadow", after, before)
	}
	snap := d2.repricer.Current()
	if snap == nil {
		t.Fatal("no snapshot after warm restart")
	}
	gotTable, err := snap.Table.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if wantTable := shadowTable(t, ds, shadow, clock.Now); !bytes.Equal(gotTable, wantTable) {
		t.Fatalf("recovered tier table diverges:\ngot  %s\nwant %s", gotTable, wantTable)
	}

	// Dedup state survived the re-hash: a replayed datagram is still
	// recognized as duplicate, not double-counted.
	_, dup0, _, _ := d2.window.Stats()
	d2.sink.Ingest(grams[0].h, grams[0].recs)
	_, dup1, _, _ := d2.window.Stats()
	if dup1 <= dup0 {
		t.Errorf("re-ingested datagram not deduplicated after shard-count change (%d -> %d)", dup0, dup1)
	}
	// The duplicate bumped the lifetime counter but contributed nothing
	// to demand.
	got := mustMarshal(t, d2.window.Aggregates())
	want := mustMarshal(t, shadow.Aggregates())
	if !bytes.Equal(got, want) {
		t.Error("duplicate replay after recovery changed the aggregates")
	}
}
