package main

// Multi-tenant acceptance tests. TestTenantParityKill9 is the fleet
// ground truth: one 3-tenant tierd process over a router-partitioned
// trace must price every tenant byte-identically to three single-tenant
// tierd processes each fed only that tenant's partition — before a
// crash, and again after all four processes are SIGKILLed and recover
// from their durability namespaces. TestTenantWFQFairness bounds the
// quote-latency bleed a re-price-hungry tenant can inflict on a quiet
// one, and TestTenantIsolation runs the in-process fleet under the race
// detector with one tenant's resolver hard-failing: the healthy
// tenants' quote paths, staleness and quotas must not notice.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/traces"
)

// labeledMetric scrapes one tenant-labeled sample from /metrics.
func labeledMetric(t *testing.T, httpAddr, name, tenantID string) (float64, bool) {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	prefix := fmt.Sprintf("%s{tenant=%q} ", name, tenantID)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, prefix)), 64)
			if err != nil {
				t.Fatalf("parsing %s: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

// writeSpecFile persists a -tenants JSON document.
func writeSpecFile(t *testing.T, dir, spec string) string {
	t.Helper()
	path := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// partitionDatagrams splits a trace round-robin across n tenants,
// stamping each datagram's engine ID so the registry routes partition k
// to the tenant owning router k+1. Round-robin (not contiguous thirds)
// interleaves the partitions on the shared collector, which is the
// adversarial arrival order for routing.
func partitionDatagrams(grams []datagram, n int) [][]datagram {
	parts := make([][]datagram, n)
	for i := range grams {
		k := i % n
		grams[i].h.EngineID = uint8(k + 1)
		parts[k] = append(parts[k], grams[i])
	}
	return parts
}

// sendDatagrams replays decoded datagrams (engine IDs included) over UDP.
func sendDatagrams(t *testing.T, addr string, grams []datagram) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i, g := range grams {
		pkt, err := netflow.EncodePacket(g.h, g.recs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
		if (i+1)%16 == 0 {
			// Pace the replay so the loopback socket buffer keeps up.
			time.Sleep(time.Millisecond)
		}
	}
}

// tableBytes fetches one tiers endpoint's canonical table.
func tableBytes(t *testing.T, httpAddr, path string) []byte {
	t.Helper()
	var tr struct {
		Table json.RawMessage `json:"table"`
	}
	if code := getJSON(t, "http://"+httpAddr+path, &tr); code != http.StatusOK {
		t.Fatalf("%s: status %d", path, code)
	}
	return tr.Table
}

// waitHealthy polls /healthz until it answers 200 (for a fleet daemon,
// until every tenant is serving a fresh snapshot).
func waitHealthy(t *testing.T, httpAddr string, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		resp, err := http.Get("http://" + httpAddr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(end) {
			t.Fatalf("daemon on %s never became healthy", httpAddr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestTenantParityKill9 is the fleet acceptance gate: a 3-tenant
// process and 3 single-tenant processes price identical partitions
// identically — the multiplexing must be invisible in the output — and
// kill -9 plus recovery from the per-tenant durability namespaces
// preserves that, byte for byte.
func TestTenantParityKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	seed := recoverSeed(t)
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	grams := traceDatagrams(t, streams)
	if len(grams) < 6 {
		t.Fatalf("trace too small: %d datagrams", len(grams))
	}
	ids := []string{"net-a", "net-b", "net-c"}
	parts := partitionDatagrams(grams, len(ids))
	// Expected unique record count per partition, after the window's
	// cross-router duplicate suppression (the trace deliberately exports
	// some flows at both endpoint routers).
	expRecords := make([]int, len(ids))
	for k := range parts {
		w, err := stream.NewWindow(traces.AggregateKey, time.Hour, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range parts[k] {
			w.Ingest(g.h, g.recs)
		}
		expRecords[k], _, _, _ = w.Stats()
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "tierd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building tierd: %v\n%s", err, out)
	}
	specPath := writeSpecFile(t, tmp, `{"tenants": [
		{"id": "net-a", "routers": [1]},
		{"id": "net-b", "routers": [2]},
		{"id": "net-c", "routers": [3]}
	]}`)

	common := []string{
		"-listen", "127.0.0.1:0", "-udp", "127.0.0.1:0", "-trace", traceDir,
		"-window", "4h", "-slot", "1h", "-reprice", "300ms",
		"-checkpoint-interval", "400ms", "-wal-sync", "batch",
	}
	fleetData := filepath.Join(tmp, "fleet")
	fleetArgs := append(append([]string{}, common...), "-tenants", specPath, "-data-dir", fleetData)
	soloArgs := make([][]string, len(ids))
	for k, id := range ids {
		soloArgs[k] = append(append([]string{}, common...), "-data-dir", filepath.Join(tmp, "solo-"+id))
	}

	type proc struct {
		cmd        *exec.Cmd
		http, udp  string
	}
	var alive []*proc
	t.Cleanup(func() {
		for _, p := range alive {
			if p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	})
	start := func(args []string) *proc {
		cmd, httpAddr, udpAddr := startTierd(t, bin, args...)
		p := &proc{cmd: cmd, http: httpAddr, udp: udpAddr}
		alive = append(alive, p)
		return p
	}
	kill9 := func(p *proc) {
		if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatal(err)
		}
		p.cmd.Wait()
		for i, q := range alive {
			if q == p {
				alive = append(alive[:i], alive[i+1:]...)
				break
			}
		}
	}

	fleet := start(fleetArgs)
	solos := make([]*proc, len(ids))
	for k := range ids {
		solos[k] = start(soloArgs[k])
	}

	// Feed each daemon until its accepted-record counter matches the
	// partition's unique count exactly. Loopback UDP can drop datagrams
	// under load, but duplicate suppression spans the whole window, so
	// retransmitting the full stream is idempotent — the accepted set
	// converges on the complete partition, which is what byte-parity
	// needs. The WAL write()s every append before returning, so once the
	// counters match, kill -9 cannot lose accepted records.
	feed := func(udpAddr string, grams []datagram, want int, records func() (float64, bool), what string) {
		t.Helper()
		deadline := time.Now().Add(90 * time.Second)
		for {
			sendDatagrams(t, udpAddr, grams)
			settle := time.Now().Add(3 * time.Second)
			for time.Now().Before(settle) {
				if v, ok := records(); ok && int(v) == want {
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
			if time.Now().After(deadline) {
				v, _ := records()
				t.Fatalf("%s: accepted records stuck at %v, want %d", what, v, want)
			}
		}
	}
	feedTenant := func(k int) {
		id := ids[k]
		feed(fleet.udp, parts[k], expRecords[k], func() (float64, bool) {
			return labeledMetric(t, fleet.http, "tierd_ingest_records_total", id)
		}, "fleet tenant "+id)
	}
	for k := range ids {
		feedTenant(k)
		feed(solos[k].udp, parts[k], expRecords[k], func() (float64, bool) {
			return metricValue(t, solos[k].http, "tierd_ingest_records_total")
		}, "solo "+ids[k])
	}

	// Wait for a checkpoint and a snapshot fitted after the last record
	// arrived (two epochs past the settle point guarantees a re-price
	// that started after convergence), so the tables compared below
	// cover the full partitions.
	quiesce := func(check func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !check() {
			if time.Now().After(deadline) {
				t.Fatalf("%s never quiesced", what)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	epochFloor := make([]float64, len(ids))
	soloEpochFloor := make([]float64, len(ids))
	for k, id := range ids {
		epochFloor[k], _ = labeledMetric(t, fleet.http, "tierd_snapshot_epoch", id)
		soloEpochFloor[k], _ = metricValue(t, solos[k].http, "tierd_snapshot_epoch")
	}
	quiesce(func() bool {
		for k, id := range ids {
			ckpts, ok1 := labeledMetric(t, fleet.http, "tierd_checkpoints_total", id)
			epoch, ok2 := labeledMetric(t, fleet.http, "tierd_snapshot_epoch", id)
			if !ok1 || !ok2 || ckpts < 1 || epoch < epochFloor[k]+2 {
				return false
			}
		}
		return true
	}, "fleet")
	for k := range ids {
		k := k
		quiesce(func() bool {
			ckpts, ok1 := metricValue(t, solos[k].http, "tierd_checkpoints_total")
			epoch, ok2 := metricValue(t, solos[k].http, "tierd_snapshot_epoch")
			return ok1 && ok2 && ckpts >= 1 && epoch >= soloEpochFloor[k]+2
		}, "solo "+ids[k])
	}

	// Parity before the crash: each tenant's canonical table equals the
	// matching solo daemon's (FittedAt and epoch are serving metadata
	// and deliberately excluded — the table bytes are the contract).
	compare := func(when string) [][]byte {
		t.Helper()
		tables := make([][]byte, len(ids))
		for k, id := range ids {
			got := tableBytes(t, fleet.http, "/v1/t/"+id+"/tiers")
			want := tableBytes(t, solos[k].http, "/v1/tiers")
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: tenant %s diverges from solo run:\nfleet %s\nsolo  %s", when, id, got, want)
			}
			tables[k] = got
		}
		return tables
	}
	before := compare("before crash")

	// The fleet's durable state lives in per-tenant namespaces.
	for _, id := range ids {
		for _, sub := range []string{"wal", "checkpoint"} {
			dir := filepath.Join(fleetData, "tenants", id, sub)
			if st, err := os.Stat(dir); err != nil || !st.IsDir() {
				t.Errorf("missing tenant namespace dir %s: %v", dir, err)
			}
		}
	}

	// kill -9 all four at a seeded point, restart, and require the same
	// parity again — now through per-namespace recovery.
	killDelay := time.Duration(uint64(seed)*2654435761%200) * time.Millisecond
	time.Sleep(killDelay)
	kill9(fleet)
	for k := range ids {
		kill9(solos[k])
	}

	fleet = start(fleetArgs)
	for k := range ids {
		solos[k] = start(soloArgs[k])
	}
	waitHealthy(t, fleet.http, 30*time.Second)
	for k := range ids {
		waitHealthy(t, solos[k].http, 30*time.Second)
	}
	after := compare("after kill -9 recovery")
	for k, id := range ids {
		if !bytes.Equal(before[k], after[k]) {
			t.Errorf("tenant %s: recovered table differs from pre-crash table:\nbefore %s\nafter  %s",
				id, before[k], after[k])
		}
	}
	fmt.Fprintf(os.Stderr, "tenant kill9: %d datagrams across %d tenants, killDelay %v\n",
		len(grams), len(ids), killDelay)
}

// fleetHarness runs an in-process multi-tenant daemon for the fairness
// and isolation tests.
type fleetHarness struct {
	d      *daemon
	cancel context.CancelFunc
	done   chan struct{}
}

func startFleetHarness(t *testing.T, cfg config) *fleetHarness {
	t.Helper()
	d, err := startDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &fleetHarness{d: d, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		if err := d.run(ctx, nil); err != nil {
			fmt.Fprintln(os.Stderr, "fleet harness:", err)
		}
	}()
	t.Cleanup(h.stop)
	return h
}

func (h *fleetHarness) stop() {
	h.cancel()
	<-h.done
}

// ingestAs routes a copy of every datagram to the tenant owning router
// engineID.
func (h *fleetHarness) ingestAs(engineID uint8, grams []datagram) {
	for _, g := range grams {
		hdr := g.h
		hdr.EngineID = engineID
		h.d.sink.Ingest(hdr, g.recs)
	}
}

// waitTenantServing polls a tenant's tiers endpoint until a snapshot is
// live.
func (h *fleetHarness) waitTenantServing(t *testing.T, id string) {
	t.Helper()
	base := "http://" + h.d.httpAddr()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var tr struct {
			Epoch int64 `json:"epoch"`
		}
		if code := getJSON(t, base+"/v1/t/"+id+"/tiers", &tr); code == http.StatusOK && tr.Epoch >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s never published a snapshot", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fleetConfig is the in-process harness base config: fast re-price
// ticks, one scheduler worker (so re-prices across tenants genuinely
// contend), and a staleness policy loose enough that only real
// starvation would trip it.
func fleetConfig(traceDir, specPath string) config {
	return config{
		listen: "127.0.0.1:0", trace: traceDir, tenantsFile: specPath,
		model: "ced", alpha: 1.1, s0: 0.2, theta: 0.2,
		strategy: "profit-weighted", tiers: 3,
		window: 4 * time.Hour, slot: time.Hour,
		reprice: 25 * time.Millisecond, maxSnapAge: time.Minute,
		workers: 2, schedWorkers: 1, drainGrace: 2 * time.Second,
	}
}

// quoteP99 measures the quote-path p99 over n sequential requests.
func quoteP99(t *testing.T, url string, n int) time.Duration {
	t.Helper()
	durations := make([]time.Duration, 0, n)
	for i := 0; i < n+20; i++ {
		start := time.Now()
		resp, err := http.Get(url)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("quote status %d", resp.StatusCode)
		}
		if i >= 20 { // warm-up: connection setup and first-hit paths
			durations = append(durations, elapsed)
		}
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return durations[len(durations)*99/100]
}

// TestTenantWFQFairness bounds cross-tenant interference on the serving
// path: a re-price-heavy tenant sharing the process must not push a
// light tenant's quote p99 past twice its solo baseline (with a small
// absolute floor so scheduler jitter on a sub-millisecond baseline
// cannot fail the test on noise).
func TestTenantWFQFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement")
	}
	if raceEnabled {
		t.Skip("latency bounds are not meaningful under the race detector")
	}
	seed := recoverSeed(t)
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	grams := traceDatagrams(t, streams)
	src := ds.Meta[0].SrcIP
	dst := ds.Meta[0].DstPrefix.Addr().Next()

	run := func(spec string, tenants int) time.Duration {
		specPath := writeSpecFile(t, t.TempDir(), spec)
		h := startFleetHarness(t, fleetConfig(traceDir, specPath))
		defer h.stop()
		for k := 0; k < tenants; k++ {
			h.ingestAs(uint8(k+1), grams)
		}
		h.waitTenantServing(t, "light")
		url := fmt.Sprintf("http://%s/v1/t/light/quote?src=%s&dst=%s", h.d.httpAddr(), src, dst)
		return quoteP99(t, url, 400)
	}

	solo := run(`{"tenants": [{"id": "light", "routers": [1]}]}`, 1)
	contended := run(`{"tenants": [
		{"id": "light", "routers": [1]},
		{"id": "hog", "routers": [2], "weight": 4}
	]}`, 2)

	limit := 2 * solo
	if floor := 5 * time.Millisecond; limit < floor {
		limit = floor
	}
	t.Logf("light tenant quote p99: solo %v, beside hog %v (limit %v)", solo, contended, limit)
	if contended > limit {
		t.Errorf("hog tenant pushed light tenant quote p99 to %v, past the %v bound (solo %v)",
			contended, limit, solo)
	}
}

// brokenResolver fails every endpoint resolution, so the owning
// tenant's re-prices fail with "no aggregate resolved to a usable flow".
type brokenResolver struct{}

func (brokenResolver) Resolve(netip.Addr, netip.Addr) (float64, econ.Region, error) {
	return 0, 0, errors.New("injected resolver outage")
}

// TestTenantIsolation runs the fleet with one tenant's resolver down
// and hammers the healthy tenants' quote paths concurrently (the race
// detector covers the shared routing, scheduling and metrics state):
// the broken tenant must be the only one degraded, and the rate-limited
// tenant's quota must not throttle anyone else.
func TestTenantIsolation(t *testing.T) {
	seed := recoverSeed(t)
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	traceDir := writeTraceDir(t, ds, len(streams))
	grams := traceDatagrams(t, streams)
	src := ds.Meta[0].SrcIP
	dst := ds.Meta[0].DstPrefix.Addr().Next()

	specPath := writeSpecFile(t, t.TempDir(), `{"tenants": [
		{"id": "net-a", "routers": [1]},
		{"id": "net-b", "routers": [2], "rate_qps": 0.2, "rate_burst": 1},
		{"id": "net-c", "routers": [3]}
	]}`)
	cfg := fleetConfig(traceDir, specPath)
	cfg.wrapTenantResolver = func(id string, rv demandfit.EndpointResolver) demandfit.EndpointResolver {
		if id == "net-c" {
			return brokenResolver{}
		}
		return rv
	}
	h := startFleetHarness(t, cfg)
	for k := 0; k < 3; k++ {
		h.ingestAs(uint8(k+1), grams)
	}
	h.waitTenantServing(t, "net-a")
	h.waitTenantServing(t, "net-b")
	base := "http://" + h.d.httpAddr()
	httpAddr := h.d.httpAddr()

	// The broken tenant records failures and stays unhealthy...
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fails, ok := labeledMetric(t, httpAddr, "tierd_reprice_failures_total", "net-c"); ok && fails >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("net-c never recorded reprice failures")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _ := get2(t, base+"/v1/t/net-c/healthz"); code == http.StatusOK {
		t.Error("net-c healthz reports 200 while its resolver is down")
	}
	// ...while the healthy tenants keep serving fresh quotes under
	// concurrent load: no 5xx, no staleness bleed, no cross-tenant 429.
	var wg sync.WaitGroup
	var stale, failed, limited int64
	var mu sync.Mutex
	quoteURL := fmt.Sprintf("%s/v1/t/net-a/quote?src=%s&dst=%s", base, src, dst)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(quoteURL)
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					mu.Lock()
					limited++
					mu.Unlock()
				case resp.StatusCode != http.StatusOK:
					mu.Lock()
					failed++
					mu.Unlock()
				case resp.Header.Get("X-Tierd-Stale") != "":
					mu.Lock()
					stale++
					mu.Unlock()
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if failed > 0 || stale > 0 || limited > 0 {
		t.Errorf("net-a under load beside a failing tenant: %d failed, %d stale, %d rate-limited (want 0/0/0)",
			failed, stale, limited)
	}

	// net-b's quota is its own: burst 1 at 0.2 qps admits the first
	// rapid request and throttles the rest with a Retry-After hint.
	got200, got429 := false, false
	bURL := fmt.Sprintf("%s/v1/t/net-b/quote?src=%s&dst=%s", base, src, dst)
	for i := 0; i < 6; i++ {
		resp, err := http.Get(bURL)
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			got200 = true
		case http.StatusTooManyRequests:
			got429 = true
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
				t.Errorf("429 Retry-After = %q, want a whole second >= 1", resp.Header.Get("Retry-After"))
			}
		default:
			t.Errorf("net-b quote status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !got200 || !got429 {
		t.Errorf("net-b burst: got200=%v got429=%v, want both", got200, got429)
	}
	if v, ok := labeledMetric(t, httpAddr, "tierd_quote_rate_limited_total", "net-a"); !ok || v != 0 {
		t.Errorf("net-a rate-limited counter = %v (ok=%v), want 0 — net-b's quota bled across tenants", v, ok)
	}

	// Freshness is per tenant too: net-a's epoch keeps advancing while
	// net-c fails every re-price.
	epochA, _ := labeledMetric(t, httpAddr, "tierd_snapshot_epoch", "net-a")
	deadline = time.Now().Add(30 * time.Second)
	for {
		if e, ok := labeledMetric(t, httpAddr, "tierd_snapshot_epoch", "net-a"); ok && e > epochA {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("net-a epoch stopped advancing beside the failing tenant")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// get2 is a status-only GET (the body is drained and discarded).
func get2(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}
