// Multi-tenant fleet mode: a -tenants spec file turns tierd into a
// per-network pricing fleet. Every tenant owns a full pricing engine —
// sliding window, repricer, demand-model configuration, quote quota and
// durability namespace — while sharing the process, the UDP collector
// (datagrams route by the exporting router's engine ID) and the HTTP
// listener (/v1/t/{tenant}/...). Re-prices across tenants are scheduled
// by a weighted-fair queue so one tenant's expensive re-fit cannot
// starve the others' pricing freshness.
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/histstore"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/server"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/tenant"
)

// member is one tenant's runtime state inside the fleet.
type member struct {
	spec     tenant.Spec
	tn       *tenant.Tenant
	window   *stream.ShardedWindow
	repricer *stream.Repricer
	reloader *engineReloader
	recorder *histRecorder
	metrics  *server.Metrics
	durable  *durability // nil without -data-dir

	// lastFailed marks the tenant for the tick loop's fast retry lane
	// (the fleet equivalent of the single-tenant reprice backoff).
	lastFailed atomic.Bool
}

// fleet owns the tenant fleet: the ingest router, the weighted-fair
// reprice scheduler, and the members in spec-file order.
type fleet struct {
	registry *tenant.Registry
	sched    *tenant.Scheduler
	members  []*member
	interval time.Duration
}

// tenantDir is a tenant's durability namespace under the data dir.
func tenantDir(dataDir, id string) string {
	return filepath.Join(dataDir, "tenants", id)
}

// startFleet builds the multi-tenant daemon: one pricing engine per
// spec, the engine-ID router in front of them, per-tenant recovery from
// <data-dir>/tenants/<id>, the WFQ scheduler, and the tenant-aware HTTP
// server.
func startFleet(cfg config) (*daemon, error) {
	specs, defaultID, err := tenant.LoadSpecFile(cfg.tenantsFile)
	if err != nil {
		return nil, err
	}
	maxAge := cfg.maxSnapAge
	if maxAge == 0 {
		maxAge = 4 * cfg.reprice
	}
	starve := cfg.starveAfter
	if starve == 0 {
		starve = 2 * cfg.reprice
	}

	base := engineFromConfig(cfg)
	if cfg.configFile != "" {
		// Strict boot read, same policy as the single-tenant daemon.
		fc, err := loadFileConfig(cfg.configFile)
		if err != nil {
			return nil, fmt.Errorf("-config: %w", err)
		}
		base = applyFileConfig(base, fc)
	}
	rs := newReloadState()
	var store histstore.Store
	if cfg.historyStore != "" {
		// One store for the whole fleet: rows are namespaced by the
		// tenant column, so tenants share the file and its group commits.
		var err error
		if store, err = histstore.Open(cfg.historyStore, histstore.Options{}); err != nil {
			return nil, fmt.Errorf("opening history store: %w", err)
		}
	}

	f := &fleet{interval: cfg.reprice}
	closeAll := func() {
		for _, m := range f.members {
			if m.durable != nil {
				m.durable.log.Close()
			}
		}
		if store != nil {
			store.Close()
		}
	}
	tenants := make([]*tenant.Tenant, 0, len(specs))
	srvTenants := make([]*server.Tenant, 0, len(specs))
	for _, sp := range specs {
		resolverWrap := cfg.wrapResolver
		if cfg.wrapTenantResolver != nil {
			id := sp.ID
			resolverWrap = func(rv demandfit.EndpointResolver) demandfit.EndpointResolver {
				return cfg.wrapTenantResolver(id, rv)
			}
		}
		w, rp, rl, err := buildEngine(cfg, overlaySpec(base, sp), resolverWrap)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("tenant %q: %w", sp.ID, err)
		}
		m := &member{spec: sp, window: w, repricer: rp, reloader: rl, metrics: server.NewMetrics()}
		m.recorder = newHistRecorder(sp.ID, cfg.historyRing, store, rs.epoch)
		var sink netflow.Sink = w
		if cfg.dataDir != "" {
			if m.durable, err = openDurability(cfg, tenantDir(cfg.dataDir, sp.ID), sp.ID, w, rp, m.recorder, rs.epoch); err != nil {
				closeAll()
				return nil, fmt.Errorf("tenant %q: %w", sp.ID, err)
			}
			rs.raise(m.durable.restoredConfigEpoch)
			sink = m.durable.sink()
		}
		m.tn = &tenant.Tenant{
			Spec:     sp,
			Window:   w,
			Repricer: rp,
			Limiter:  tenant.NewBucket(sp.RateQPS, sp.RateBurst, cfg.now),
			Sink:     sink,
		}
		f.members = append(f.members, m)
		tenants = append(tenants, m.tn)

		st := &server.Tenant{
			ID:             sp.ID,
			Snapshots:      rp,
			Metrics:        m.metrics,
			Ingest:         m.ingestStats,
			MaxSnapshotAge: maxAge,
			Weight:         m.tn.Weight(),
			RateQPS:        m.tn.Limiter.Rate(),
			RateBurst:      m.tn.Limiter.Burst(),
		}
		if m.tn.Limiter != nil {
			st.Limiter = m.tn.Limiter
		}
		st.History = m.recorder.snapshot
		if store != nil {
			st.HistoryScan = m.recorder.scan
		}
		if m.durable != nil {
			st.Durability = m.durable.stats
		}
		srvTenants = append(srvTenants, st)
	}
	if f.registry, err = tenant.NewRegistry(tenants, defaultID); err != nil {
		closeAll()
		return nil, err
	}
	warnOrphanNamespaces(cfg.dataDir, specs)

	// Warm restart: publish each recovered tenant's snapshot before
	// serving, same policy as the single-tenant daemon.
	for _, m := range f.members {
		if m.durable == nil {
			continue
		}
		if err := m.durable.warmReprice(cfg.drainGrace); err != nil {
			fmt.Fprintf(os.Stderr, "tierd: tenant %s: %v\n", m.spec.ID, err)
		}
	}

	f.sched = tenant.NewScheduler(cfg.schedWorkers, starve, cfg.now)

	d := &daemon{cfg: cfg, fleet: f, sink: f.registry, histStore: store, reload: rs}
	if cfg.wrapSink != nil {
		d.sink = cfg.wrapSink(d.sink)
	}
	fleetSrvCfg := server.Config{
		Tenants:       srvTenants,
		DefaultTenant: defaultID,
		Metrics:       server.NewMetrics(),
		Ingest:        d.collectorStats,
		Sched:         f.schedStats,
		Now:           cfg.now,
		Reload:        rs.stats,
	}
	if store != nil {
		fleetSrvCfg.HistoryStore = histStoreStats(store)
	}
	srv, err := server.New(fleetSrvCfg)
	if err != nil {
		closeAll()
		return nil, err
	}
	for _, m := range f.members {
		if m.durable != nil {
			m.durable.start()
		}
	}
	if err := d.startListeners(srv.Handler()); err != nil {
		closeAll()
		return nil, err
	}
	return d, nil
}

// overlaySpec overlays a tenant's overrides on a base engine spec
// (the flags, possibly already overlaid with -config): zero-valued
// spec fields inherit the base.
func overlaySpec(es engineSpec, sp tenant.Spec) engineSpec {
	if sp.Trace != "" {
		es.trace = sp.Trace
	}
	if sp.Model != "" {
		es.model = sp.Model
	}
	if sp.Alpha != 0 {
		es.alpha = sp.Alpha
	}
	if sp.S0 != 0 {
		es.s0 = sp.S0
	}
	if sp.Theta != 0 {
		es.theta = sp.Theta
	}
	if sp.Strategy != "" {
		es.strategy = sp.Strategy
	}
	if sp.Tiers != 0 {
		es.tiers = sp.Tiers
	}
	if sp.Blended != 0 {
		es.blended = sp.Blended
	}
	if sp.DemandSec != 0 {
		es.demandSec = sp.DemandSec
	}
	return es
}

// warnOrphanNamespaces flags on-disk tenant namespaces no configured
// tenant owns: likely a renamed or removed tenant whose durable state
// would otherwise rot silently.
func warnOrphanNamespaces(dataDir string, specs []tenant.Spec) {
	if dataDir == "" {
		return
	}
	entries, err := os.ReadDir(filepath.Join(dataDir, "tenants"))
	if err != nil {
		return // nothing on disk yet
	}
	known := make(map[string]bool, len(specs))
	for _, sp := range specs {
		known[sp.ID] = true
	}
	for _, e := range entries {
		if e.IsDir() && !known[e.Name()] {
			fmt.Fprintf(os.Stderr, "tierd: warning: orphan tenant namespace %s (no such tenant configured)\n",
				tenantDir(dataDir, e.Name()))
		}
	}
}

// collectorStats reports the shared UDP collector's datagram counters;
// record-level counters live on each tenant.
func (d *daemon) collectorStats() server.IngestStats {
	var packets, bad int
	var socketDrops uint64
	if d.udp != nil {
		packets, bad = d.udp.Stats()
		socketDrops = d.udp.SocketDrops()
	}
	return server.IngestStats{Packets: uint64(packets), BadPackets: uint64(bad), SocketDrops: socketDrops}
}

// ingestStats is one tenant's routed-ingest view: datagrams the
// registry routed here plus the tenant window's record counters.
func (m *member) ingestStats() server.IngestStats {
	records, duplicates, dropped, _ := m.window.Stats()
	return server.IngestStats{
		Packets:      m.tn.RoutedPackets(),
		Records:      uint64(records),
		Duplicates:   uint64(duplicates),
		Dropped:      uint64(dropped),
		ShardRecords: m.window.ShardRecords(),
	}
}

// schedStats adapts the scheduler's telemetry for /metrics.
func (f *fleet) schedStats() server.SchedStats {
	st := f.sched.Stats()
	out := server.SchedStats{
		QueueDepth: st.QueueDepth,
		Dispatched: st.Dispatched,
		Coalesced:  st.Coalesced,
		Starved:    st.Starved,
	}
	for _, fs := range f.sched.FlowStats() {
		out.Flows = append(out.Flows, server.SchedFlowStats{
			Tenant:          fs.ID,
			Weight:          fs.Weight,
			Dispatched:      fs.Dispatched,
			Coalesced:       fs.Coalesced,
			Starved:         fs.Starved,
			LastWaitSeconds: fs.LastWait.Seconds(),
			LastRunSeconds:  fs.LastRun.Seconds(),
			CostSeconds:     fs.CostSeconds,
		})
	}
	return out
}

// repriceOnce runs one re-price for the member and feeds its telemetry.
func (m *member) repriceOnce(ctx context.Context) {
	start := time.Now()
	snap, err := m.repricer.Reprice(ctx)
	m.onTick(snap, time.Since(start), err)
}

// onTick is the member's re-price telemetry hook — the per-tenant
// mirror of the single-tenant daemon's onTick.
func (m *member) onTick(snap *stream.Snapshot, elapsed time.Duration, err error) {
	m.metrics.ConsecutiveFailures.Set(m.repricer.ConsecutiveFailures())
	if errors.Is(err, stream.ErrEmptyWindow) && m.repricer.Current() == nil {
		// Warm-up: no traffic yet is the normal initial state.
		m.lastFailed.Store(false)
		return
	}
	m.metrics.ObserveReprice(elapsed.Seconds(), err != nil)
	m.lastFailed.Store(err != nil)
	if snap != nil {
		m.metrics.RepriceFlows.Set(int64(snap.Table.Flows))
		m.recorder.record(snap)
	}
	if err != nil && !errors.Is(err, stream.ErrEmptyWindow) {
		fmt.Fprintf(os.Stderr, "tierd: tenant %s: reprice: %v\n", m.spec.ID, err)
	}
}

// submit queues one re-price for the member on the fair scheduler.
func (f *fleet) submit(m *member) {
	f.sched.Submit(m.spec.ID, m.tn.Weight(), m.repriceOnce)
}

// tickLoop submits every tenant's re-price each interval, plus a fast
// retry lane (interval/8, the single-tenant backoff floor) for tenants
// whose last attempt failed. Coalescing in the scheduler makes the
// retry lane free for healthy tenants: a pending job absorbs resubmits.
func (f *fleet) tickLoop(ctx context.Context) {
	ticker := time.NewTicker(f.interval)
	defer ticker.Stop()
	retry := f.interval / 8
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	retryTicker := time.NewTicker(retry)
	defer retryTicker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			for _, m := range f.members {
				f.submit(m)
			}
		case <-retryTicker.C:
			for _, m := range f.members {
				if m.lastFailed.Load() {
					f.submit(m)
				}
			}
		}
	}
}

// ingestStdin feeds a concatenated export stream into the fleet's
// router; at EOF every tenant re-prices immediately so piped replays
// serve quotes without waiting out the next tick.
func (f *fleet) ingestStdin(ctx context.Context, d *daemon, stdin io.Reader) {
	rd := netflow.NewReader(bufio.NewReader(stdin))
	for ctx.Err() == nil {
		h, recs, err := rd.Next()
		if err == io.EOF {
			for _, m := range f.members {
				m.repriceOnce(ctx)
			}
			fmt.Fprintln(os.Stderr, "tierd: stdin stream complete, fleet snapshots published")
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tierd: stdin:", err)
			return
		}
		d.sink.Ingest(h, recs)
	}
}

// runFleet serves the fleet until ctx is cancelled, then drains: ingest
// stops, the scheduler finishes in-flight jobs, every tenant runs one
// final re-price over everything received, durability closes with a
// covering checkpoint per tenant, and HTTP completes in-flight
// requests.
func (d *daemon) runFleet(ctx context.Context, stdin io.Reader) error {
	f := d.fleet
	schedCtx, schedCancel := context.WithCancel(context.Background())
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		f.sched.Run(schedCtx)
	}()
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		f.tickLoop(ctx)
	}()
	stdinDone := make(chan struct{})
	if d.cfg.stdin {
		go func() {
			defer close(stdinDone)
			f.ingestStdin(ctx, d, stdin)
		}()
	} else {
		close(stdinDone)
	}

	<-ctx.Done()

	// Drain order mirrors the single-tenant daemon: stop ingest, stop
	// scheduling, final re-price per tenant, close durability, then HTTP.
	if d.udp != nil {
		d.udp.Close() // blocks until the receive loop exits
	}
	<-stdinDone
	<-tickDone
	schedCancel()
	<-schedDone
	grace := d.cfg.drainGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	for _, m := range f.members {
		drainCtx, cancel := context.WithTimeout(context.Background(), grace)
		m.repriceOnce(drainCtx)
		cancel()
	}
	for _, m := range f.members {
		if m.durable == nil {
			continue
		}
		if err := m.durable.close(); err != nil {
			fmt.Fprintf(os.Stderr, "tierd: tenant %s: durability: %v\n", m.spec.ID, err)
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if d.pprofSrv != nil {
		_ = d.pprofSrv.Shutdown(shutdownCtx)
	}
	return d.httpSrv.Shutdown(shutdownCtx)
}
