package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/traces"
)

// writeTraceDir materializes the parts of a tracegen output directory
// tierd reads: geoip.csv and meta.txt.
func writeTraceDir(t testing.TB, ds *traces.Dataset, routers int) string {
	t.Helper()
	dir := t.TempDir()
	geo, err := os.Create(filepath.Join(dir, "geoip.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Geo.WriteCSV(geo); err != nil {
		t.Fatal(err)
	}
	if err := geo.Close(); err != nil {
		t.Fatal(err)
	}
	meta, err := os.Create(filepath.Join(dir, "meta.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := traces.WriteMeta(meta, traces.Meta{
		Dataset: ds.Name, Flows: len(ds.Flows), P0: ds.P0,
		DurationSec: ds.DurationSec, Sampling: int(ds.SamplingInterval), Routers: routers,
	}); err != nil {
		t.Fatal(err)
	}
	if err := meta.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// sortedRouters returns stream keys in deterministic order.
func sortedRouters(streams map[string][]byte) []string {
	routers := make([]string, 0, len(streams))
	for r := range streams {
		routers = append(routers, r)
	}
	sort.Strings(routers)
	return routers
}

// replayUDP re-packetizes every router stream and sends each export
// packet as one datagram, as real routers do. Returns datagrams sent.
func replayUDP(t testing.TB, addr string, streams map[string][]byte) int {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sent := 0
	for _, router := range sortedRouters(streams) {
		rd := netflow.NewReader(bytes.NewReader(streams[router]))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			pkt, err := netflow.EncodePacket(h, recs)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Write(pkt); err != nil {
				t.Fatal(err)
			}
			sent++
			if sent%64 == 0 {
				// Pace the replay so the loopback socket buffer keeps up.
				time.Sleep(time.Millisecond)
			}
		}
	}
	return sent
}

// batchAggregates runs the batch collector over the same streams in the
// same deterministic order.
func batchAggregates(t testing.TB, streams map[string][]byte) []netflow.Aggregate {
	t.Helper()
	c := netflow.NewCollector(traces.AggregateKey)
	for _, router := range sortedRouters(streams) {
		rd := netflow.NewReader(bytes.NewReader(streams[router]))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			c.Ingest(h, recs)
		}
	}
	return c.Aggregates()
}

// demandMatches reports whether the window holds exactly the batch
// pipeline's de-duplicated demand (key, octets, record count). Endpoint
// samples are excluded: they can legitimately differ when a lost
// datagram is replayed, and the pricing pipeline does not read them.
func demandMatches(window, batch []netflow.Aggregate) bool {
	if len(window) != len(batch) {
		return false
	}
	for i := range window {
		if window[i].Key != batch[i].Key ||
			window[i].Octets != batch[i].Octets ||
			window[i].Records != batch[i].Records {
			return false
		}
	}
	return true
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

// TestTierdEndToEnd is the acceptance test: start the daemon, replay a
// generated trace over UDP, and assert /v1/tiers and /v1/quote are
// byte-identical to the batch pipeline on the same window, then shut
// down gracefully.
func TestTierdEndToEnd(t *testing.T) {
	ds, err := traces.EUISP(91)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	dir := writeTraceDir(t, ds, len(streams))

	cfg := config{
		listen: "127.0.0.1:0", udp: "127.0.0.1:0", trace: dir,
		model: "ced", alpha: 1.1, s0: 0.2, theta: 0.2,
		strategy: "profit-weighted", tiers: 3,
		window: 4 * time.Hour, slot: time.Hour, reprice: time.Hour,
		workers: 4,
	}
	d, err := startDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- d.run(ctx, strings.NewReader("")) }()

	// Before any ingest: warming up.
	if code := getJSON(t, "http://"+d.httpAddr()+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz before ingest: %d, want 503", code)
	}

	// Replay the capture over UDP; datagram loss is tolerated by
	// re-sending (the window de-duplicates), so the assertion below is
	// about correctness, not lossless UDP.
	batch := batchAggregates(t, streams)
	deadline := time.Now().Add(30 * time.Second)
	for {
		sent := replayUDP(t, d.udpAddr(), streams)
		if err := d.udp.Drain(sent, 5*time.Second); err != nil {
			t.Log(err) // loss: the re-send below repairs it
		}
		if demandMatches(d.window.Aggregates(), batch) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window never converged to the batch aggregates")
		}
	}

	// Trigger a re-price as the ticker would.
	if _, err := d.repricer.Reprice(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Batch reference on the identical window.
	rv := &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true}
	flows, _, err := demandfit.BuildFlows(batch, rv, ds.DurationSec)
	if err != nil {
		t.Fatal(err)
	}
	batchTable, err := stream.BatchTable(flows, econ.CED{Alpha: 1.1}, cost.Linear{Theta: 0.2},
		ds.P0, bundling.ProfitWeighted{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantTable, err := batchTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// /v1/tiers must carry the batch pipeline's table byte for byte.
	var tiersResp struct {
		Epoch int64           `json:"epoch"`
		Table json.RawMessage `json:"table"`
	}
	if code := getJSON(t, "http://"+d.httpAddr()+"/v1/tiers", &tiersResp); code != http.StatusOK {
		t.Fatalf("/v1/tiers: status %d", code)
	}
	if !bytes.Equal([]byte(tiersResp.Table), wantTable) {
		t.Fatalf("/v1/tiers diverges from batch pipeline:\nonline: %s\nbatch:  %s", tiersResp.Table, wantTable)
	}

	// Every flow quotes the batch pipeline's price for its bucket.
	market, err := core.NewMarket(flows, econ.CED{Alpha: 1.1}, cost.Linear{Theta: 0.2}, ds.P0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := market.Run(bundling.ProfitWeighted{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	priceOf := map[string]float64{} // bucket key → batch price
	for b, block := range out.Partition {
		for _, i := range block {
			priceOf[flows[i].ID] = out.Prices[b]
		}
	}
	for _, a := range batch {
		var q struct {
			Price  float64 `json:"price_usd_per_mbps_month"`
			Source string  `json:"source"`
		}
		url := fmt.Sprintf("http://%s/v1/quote?src=%s&dst=%s", d.httpAddr(), a.SrcAddr, a.DstAddr)
		if code := getJSON(t, url, &q); code != http.StatusOK {
			t.Fatalf("quote %s: status %d", a.Key, code)
		}
		if q.Price != priceOf[a.Key] {
			t.Fatalf("quote %s: price %v, batch pipeline prices it %v", a.Key, q.Price, priceOf[a.Key])
		}
		if q.Source != "window" {
			t.Errorf("quote %s from %q, want window", a.Key, q.Source)
		}
	}

	// Health and metrics reflect the running system.
	if code := getJSON(t, "http://"+d.httpAddr()+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: %d, want 200", code)
	}
	resp, err := http.Get("http://" + d.httpAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tierd_ingest_packets_total",
		"tierd_quote_requests_total",
		"tierd_snapshot_epoch 1",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Graceful shutdown: cancel (as SIGTERM would) and drain.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after cancellation")
	}
}

// TestTierdStdinIngest covers the tracegen -stdout | tierd -stdin pipe:
// the daemon prices the stream as soon as it ends.
func TestTierdStdinIngest(t *testing.T) {
	ds, err := traces.EUISP(93)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 94})
	if err != nil {
		t.Fatal(err)
	}
	dir := writeTraceDir(t, ds, len(streams))
	var pipe bytes.Buffer
	for _, router := range sortedRouters(streams) {
		pipe.Write(streams[router])
	}

	cfg := config{
		listen: "127.0.0.1:0", trace: dir, stdin: true,
		model: "ced", alpha: 1.1, theta: 0.2,
		strategy: "profit-weighted", tiers: 3,
		window: 4 * time.Hour, slot: time.Hour, reprice: time.Hour,
	}
	d, err := startDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- d.run(ctx, &pipe) }()

	// The stdin path re-prices on EOF; poll until the snapshot appears.
	deadline := time.Now().Add(30 * time.Second)
	for d.repricer.Current() == nil {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot after stdin replay")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var tiersResp struct {
		Table json.RawMessage `json:"table"`
	}
	if code := getJSON(t, "http://"+d.httpAddr()+"/v1/tiers", &tiersResp); code != http.StatusOK {
		t.Fatalf("/v1/tiers: status %d", code)
	}
	if !strings.Contains(string(tiersResp.Table), `"strategy":"profit-weighted"`) {
		t.Errorf("unexpected table %s", tiersResp.Table)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestStartDaemonErrors(t *testing.T) {
	ds, err := traces.EUISP(95)
	if err != nil {
		t.Fatal(err)
	}
	dir := writeTraceDir(t, ds, 2)
	good := config{
		listen: "127.0.0.1:0", udp: "127.0.0.1:0", trace: dir,
		model: "ced", alpha: 1.1, theta: 0.2, strategy: "profit-weighted",
		tiers: 3, window: time.Hour, slot: time.Minute, reprice: time.Minute,
	}
	cases := []func(*config){
		func(c *config) { c.trace = t.TempDir() },                // no meta.txt
		func(c *config) { c.model = "nonesuch" },                 // unknown model
		func(c *config) { c.strategy = "nonesuch" },              // unknown strategy
		func(c *config) { c.window = time.Second; c.slot = 2 * time.Second }, // window < slot
		func(c *config) { c.tiers = 0 },                          // repricer validation
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if _, err := startDaemon(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// BenchmarkQuoteLoad is the quote-path load benchmark: it drives the
// snapshot lookup that backs /v1/quote and reports tail latency. The
// hot path must not allocate (allocs/op 0; pinned by the stream
// package's TestQuoteZeroAllocs).
func BenchmarkQuoteLoad(b *testing.B) {
	ds, err := traces.EUISP(96)
	if err != nil {
		b.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 97})
	if err != nil {
		b.Fatal(err)
	}
	w, err := stream.NewWindow(traces.AggregateKey, time.Hour, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, router := range sortedRouters(streams) {
		rd := netflow.NewReader(bytes.NewReader(streams[router]))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			w.Ingest(h, recs)
		}
	}
	rp, err := stream.NewRepricer(stream.Config{
		Window:      w,
		Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          ds.P0,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       3,
		DurationSec: ds.DurationSec,
	})
	if err != nil {
		b.Fatal(err)
	}
	snap, err := rp.Reprice(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	type pair struct{ src, dst netip.Addr }
	aggs := w.Aggregates()
	keys := make([]pair, len(aggs))
	for i, a := range aggs {
		keys[i] = pair{a.SrcAddr, a.DstAddr}
	}

	lat := make([]int64, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		start := time.Now()
		q, ok := snap.Quote(k.src, k.dst)
		lat[i] = int64(time.Since(start))
		if !ok || q.Price <= 0 {
			b.Fatal("quote miss on the hot path")
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	if len(lat) > 0 {
		b.ReportMetric(float64(p99), "p99-ns")
	}
}
