package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Diff compares two benchjson snapshots and reports per-benchmark deltas
// for ns/op, B/op, and allocs/op. Benchmarks present in only one snapshot
// are listed but never fail the diff (the suite is allowed to grow). A
// benchmark whose ns/op regressed by more than threshold (a fraction:
// 0.15 = +15%) is a failure.
type diffRow struct {
	Key        string
	Old, New   *Result
	NsDelta    float64 // fractional change, new/old - 1
	Regression bool
}

// diffKey identifies a benchmark across snapshots.
func diffKey(r Result) string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

func loadResults(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var results []Result
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

// Diff computes the comparison rows; regressed reports whether any common
// benchmark exceeded the ns/op threshold.
func Diff(old, new []Result, threshold float64) (rows []diffRow, regressed bool) {
	oldBy := make(map[string]*Result, len(old))
	for i := range old {
		oldBy[diffKey(old[i])] = &old[i]
	}
	newBy := make(map[string]*Result, len(new))
	for i := range new {
		newBy[diffKey(new[i])] = &new[i]
	}
	keys := make([]string, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, ok := oldBy[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		row := diffRow{Key: k, Old: oldBy[k], New: newBy[k]}
		if row.Old != nil && row.New != nil && row.Old.NsPerOp > 0 {
			row.NsDelta = row.New.NsPerOp/row.Old.NsPerOp - 1
			row.Regression = row.NsDelta > threshold
		}
		if row.Regression {
			regressed = true
		}
		rows = append(rows, row)
	}
	return rows, regressed
}

func fmtPtrDelta(old, new *float64) string {
	if old == nil || new == nil {
		return "-"
	}
	if *old == 0 {
		if *new == 0 {
			return "+0.0%"
		}
		return fmt.Sprintf("%+.0f", *new-*old)
	}
	return fmt.Sprintf("%+.1f%%", (*new / *old - 1)*100)
}

func writeDiff(w io.Writer, rows []diffRow, threshold float64) {
	fmt.Fprintf(w, "%-70s  %12s  %12s  %8s  %8s  %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns/op", "ΔB/op", "Δallocs")
	for _, r := range rows {
		switch {
		case r.Old == nil:
			fmt.Fprintf(w, "%-70s  %12s  %12.0f  %8s  %8s  %8s\n", r.Key, "(added)", r.New.NsPerOp, "-", "-", "-")
		case r.New == nil:
			fmt.Fprintf(w, "%-70s  %12.0f  %12s  %8s  %8s  %8s\n", r.Key, r.Old.NsPerOp, "(gone)", "-", "-", "-")
		default:
			mark := ""
			if r.Regression {
				mark = "  << REGRESSION"
			}
			fmt.Fprintf(w, "%-70s  %12.0f  %12.0f  %+7.1f%%  %8s  %8s%s\n",
				r.Key, r.Old.NsPerOp, r.New.NsPerOp, r.NsDelta*100,
				fmtPtrDelta(r.Old.BytesPerOp, r.New.BytesPerOp),
				fmtPtrDelta(r.Old.AllocsPerOp, r.New.AllocsPerOp), mark)
		}
	}
	fmt.Fprintf(w, "threshold: ns/op regressions above +%.0f%% fail\n", threshold*100)
}

// CheckSLO applies the absolute floors that govern SLO rows (package
// prefix "slo/") in a fresh snapshot, independent of any baseline: the
// run's error rate must not exceed maxErrRate and its achieved QPS must
// reach at least minQPSFrac of target (a shortfall means the daemon —
// not the generator — could not keep up, which no latency baseline can
// excuse). Returns one violation message per failing run.
func CheckSLO(results []Result, maxErrRate, minQPSFrac float64) []string {
	var violations []string
	seen := map[string]bool{} // metrics are duplicated per quantile row; report each run once
	for _, r := range results {
		if !strings.HasPrefix(r.Pkg, sloPkgPrefix) || r.Metrics == nil || seen[r.Pkg] {
			continue
		}
		seen[r.Pkg] = true
		if errRate, ok := r.Metrics["err-rate"]; ok && errRate > maxErrRate {
			violations = append(violations,
				fmt.Sprintf("%s: error rate %.4f exceeds SLO floor %.4f", r.Pkg, errRate, maxErrRate))
		}
		target, okT := r.Metrics["target-qps"]
		achieved, okA := r.Metrics["achieved-qps"]
		if okT && okA && target > 0 && achieved < minQPSFrac*target {
			violations = append(violations,
				fmt.Sprintf("%s: achieved %.1f qps below %.0f%% of target %.1f",
					r.Pkg, achieved, minQPSFrac*100, target))
		}
	}
	return violations
}

// runDiff is the `benchjson diff` entry point.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("benchjson diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.15,
		"fractional ns/op regression that fails the diff (0.15 = +15%)")
	maxErrRate := fs.Float64("slo-max-err-rate", 0.01,
		"absolute error-rate floor for slo/ rows in the new snapshot")
	minQPSFrac := fs.Float64("slo-min-qps", 0.90,
		"minimum achieved/target QPS fraction for slo/ rows in the new snapshot")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchjson diff [-threshold 0.15] <old.json> <new.json>")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	old, err := loadResults(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	new, err := loadResults(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	rows, regressed := Diff(old, new, *threshold)
	writeDiff(os.Stdout, rows, *threshold)
	violations := CheckSLO(new, *maxErrRate, *minQPSFrac)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "benchjson: SLO violation:", v)
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "benchjson: ns/op regression above threshold")
	}
	if regressed || len(violations) > 0 {
		return 1
	}
	return 0
}
