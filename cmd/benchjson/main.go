// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array on stdout, one object per benchmark result, so the
// performance trajectory of the repo is machine-readable:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH_$(date +%F).json
//
// Each object carries the package (from the preceding "pkg:" line), the
// benchmark name (GOMAXPROCS suffix stripped), iterations, ns/op, and —
// when present — B/op, allocs/op, and any custom metrics reported via
// b.ReportMetric (e.g. p99-ns), under "metrics".
//
// The diff subcommand compares two snapshots and fails on regressions:
//
//	benchjson diff [-threshold 0.15] BENCH_old.json BENCH_new.json
//
// exits non-zero when any benchmark present in both snapshots regressed
// its ns/op by more than the threshold (default +15%). Added and removed
// benchmarks are reported but never fail the diff.
//
// The slo subcommand converts a cmd/loadgen load-test report into result
// rows — one per latency quantile, ns/op carrying the quantile — so SLO
// records ride the same trajectory and the same diff gate:
//
//	benchjson slo slo-report.json > slo-rows.json
//	benchjson diff BENCH_old.json slo-rows.json
//
// Rows under the "slo/" package prefix additionally face absolute floors
// in diff: error rate above -slo-max-err-rate or achieved QPS below
// -slo-min-qps of target fail regardless of the baseline.
//
// The merge subcommand folds fresh rows into an existing snapshot
// (replacing same-key rows, appending new ones), which is how the slo
// stage of ci.sh writes its record into the newest BENCH_*.json:
//
//	benchjson merge BENCH_2026-08-05.json slo-rows.json > merged.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "diff":
			os.Exit(runDiff(os.Args[2:]))
		case "slo":
			os.Exit(runSLO(os.Args[2:]))
		case "merge":
			os.Exit(runMerge(os.Args[2:]))
		}
	}
	results, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Result is one benchmark line, normalized.
type Result struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// Build identifies the binary under test for rows that come from a
	// live daemon (SLO rows carry the tierd X-Tierd-Build identity);
	// informational — the diff ignores it.
	Build string `json:"build,omitempty"`
}
