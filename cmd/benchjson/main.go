// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array on stdout, one object per benchmark result, so the
// performance trajectory of the repo is machine-readable:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH_$(date +%F).json
//
// Each object carries the package (from the preceding "pkg:" line), the
// benchmark name (GOMAXPROCS suffix stripped), iterations, ns/op, and —
// when present — B/op, allocs/op, and any custom metrics reported via
// b.ReportMetric (e.g. p99-ns), under "metrics".
//
// The diff subcommand compares two snapshots and fails on regressions:
//
//	benchjson diff [-threshold 0.15] BENCH_old.json BENCH_new.json
//
// exits non-zero when any benchmark present in both snapshots regressed
// its ns/op by more than the threshold (default +15%). Added and removed
// benchmarks are reported but never fail the diff.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	results, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Result is one benchmark line, normalized.
type Result struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}
