package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tieredpricing/internal/stream
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkWindowIngest-8   	    5000	    245678 ns/op	   12345 B/op	      67 allocs/op
PASS
ok  	tieredpricing/internal/stream	1.5s
goos: linux
goarch: amd64
pkg: tieredpricing/cmd/tierd
BenchmarkQuoteLoad 	  100000	       149.0 ns/op	        97.00 p99-ns	       0 B/op	       0 allocs/op
PASS
ok  	tieredpricing/cmd/tierd	0.04s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}

	w := results[0]
	if w.Pkg != "tieredpricing/internal/stream" || w.Name != "BenchmarkWindowIngest" {
		t.Errorf("result 0 identity: %+v", w)
	}
	if w.Iterations != 5000 || w.NsPerOp != 245678 {
		t.Errorf("result 0 timing: %+v", w)
	}
	if w.BytesPerOp == nil || *w.BytesPerOp != 12345 || w.AllocsPerOp == nil || *w.AllocsPerOp != 67 {
		t.Errorf("result 0 memory: %+v", w)
	}

	q := results[1]
	if q.Pkg != "tieredpricing/cmd/tierd" || q.Name != "BenchmarkQuoteLoad" {
		t.Errorf("result 1 identity: %+v", q)
	}
	if q.NsPerOp != 149.0 {
		t.Errorf("result 1 ns/op = %v", q.NsPerOp)
	}
	if q.AllocsPerOp == nil || *q.AllocsPerOp != 0 {
		t.Errorf("result 1 allocs: %+v", q.AllocsPerOp)
	}
	if q.Metrics["p99-ns"] != 97.0 {
		t.Errorf("result 1 custom metric: %v", q.Metrics)
	}
}

func TestParseStripsGOMAXPROCSSuffixOnly(t *testing.T) {
	in := "pkg: p\nBenchmarkFit-b2-16   	 10	 100 ns/op\n"
	results, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Name != "BenchmarkFit-b2" {
		t.Errorf("name = %q, want BenchmarkFit-b2", results[0].Name)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	in := strings.Join([]string{
		"=== RUN   TestSomething",
		"Benchmarks are fun", // starts with Benchmark, not a result
		"BenchmarkEcho",      // -v echo with no fields
		"--- PASS: TestSomething (0.00s)",
		"BenchmarkReal-4  200  50 ns/op",
	}, "\n")
	results, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkReal" {
		t.Fatalf("results = %+v, want just BenchmarkReal", results)
	}
}

func TestParseRejectsMalformedMetric(t *testing.T) {
	in := "BenchmarkBad-4  200  fifty ns/op"
	if _, err := Parse(strings.NewReader(in)); err == nil {
		t.Error("expected error for malformed metric value")
	}
}

func TestParseEmptyInput(t *testing.T) {
	results, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("results = %+v, want none", results)
	}
}
