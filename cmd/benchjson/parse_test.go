package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tieredpricing/internal/stream
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkWindowIngest-8   	    5000	    245678 ns/op	   12345 B/op	      67 allocs/op
PASS
ok  	tieredpricing/internal/stream	1.5s
goos: linux
goarch: amd64
pkg: tieredpricing/cmd/tierd
BenchmarkQuoteLoad 	  100000	       149.0 ns/op	        97.00 p99-ns	       0 B/op	       0 allocs/op
PASS
ok  	tieredpricing/cmd/tierd	0.04s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}

	w := results[0]
	if w.Pkg != "tieredpricing/internal/stream" || w.Name != "BenchmarkWindowIngest" {
		t.Errorf("result 0 identity: %+v", w)
	}
	if w.Iterations != 5000 || w.NsPerOp != 245678 {
		t.Errorf("result 0 timing: %+v", w)
	}
	if w.BytesPerOp == nil || *w.BytesPerOp != 12345 || w.AllocsPerOp == nil || *w.AllocsPerOp != 67 {
		t.Errorf("result 0 memory: %+v", w)
	}

	q := results[1]
	if q.Pkg != "tieredpricing/cmd/tierd" || q.Name != "BenchmarkQuoteLoad" {
		t.Errorf("result 1 identity: %+v", q)
	}
	if q.NsPerOp != 149.0 {
		t.Errorf("result 1 ns/op = %v", q.NsPerOp)
	}
	if q.AllocsPerOp == nil || *q.AllocsPerOp != 0 {
		t.Errorf("result 1 allocs: %+v", q.AllocsPerOp)
	}
	if q.Metrics["p99-ns"] != 97.0 {
		t.Errorf("result 1 custom metric: %v", q.Metrics)
	}
}

func TestParseStripsGOMAXPROCSSuffixOnly(t *testing.T) {
	in := "pkg: p\nBenchmarkFit-b2-16   	 10	 100 ns/op\n"
	results, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Name != "BenchmarkFit-b2" {
		t.Errorf("name = %q, want BenchmarkFit-b2", results[0].Name)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	in := strings.Join([]string{
		"=== RUN   TestSomething",
		"Benchmarks are fun", // starts with Benchmark, not a result
		"BenchmarkEcho",      // -v echo with no fields
		"--- PASS: TestSomething (0.00s)",
		"BenchmarkReal-4  200  50 ns/op",
	}, "\n")
	results, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkReal" {
		t.Fatalf("results = %+v, want just BenchmarkReal", results)
	}
}

func TestParseRejectsMalformedMetric(t *testing.T) {
	in := "BenchmarkBad-4  200  fifty ns/op"
	if _, err := Parse(strings.NewReader(in)); err == nil {
		t.Error("expected error for malformed metric value")
	}
}

func TestParseEmptyInput(t *testing.T) {
	results, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("results = %+v, want none", results)
	}
}

func TestDiff(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	old := []Result{
		{Pkg: "p", Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: f(64), AllocsPerOp: f(2)},
		{Pkg: "p", Name: "BenchmarkB", NsPerOp: 200},
		{Pkg: "p", Name: "BenchmarkGone", NsPerOp: 10},
	}
	new := []Result{
		{Pkg: "p", Name: "BenchmarkA", NsPerOp: 110, BytesPerOp: f(32), AllocsPerOp: f(1)}, // +10%: ok
		{Pkg: "p", Name: "BenchmarkB", NsPerOp: 260},                                       // +30%: regression
		{Pkg: "p", Name: "BenchmarkAdded", NsPerOp: 5},
	}
	rows, regressed := Diff(old, new, 0.15)
	if !regressed {
		t.Fatal("want regression for BenchmarkB (+30% > 15%)")
	}
	byKey := map[string]diffRow{}
	for _, r := range rows {
		byKey[r.Key] = r
	}
	if r := byKey["p.BenchmarkA"]; r.Regression {
		t.Errorf("BenchmarkA (+10%%) flagged as regression")
	}
	if r := byKey["p.BenchmarkB"]; !r.Regression {
		t.Errorf("BenchmarkB (+30%%) not flagged")
	}
	if r := byKey["p.BenchmarkGone"]; r.New != nil || r.Regression {
		t.Errorf("removed benchmark mishandled: %+v", r)
	}
	if r := byKey["p.BenchmarkAdded"]; r.Old != nil || r.Regression {
		t.Errorf("added benchmark mishandled: %+v", r)
	}

	// Under a looser threshold BenchmarkB passes too.
	if _, regressed := Diff(old, new, 0.5); regressed {
		t.Error("threshold 0.5 should tolerate +30%")
	}
}

func TestDiffImprovementNeverFails(t *testing.T) {
	old := []Result{{Name: "BenchmarkFast", NsPerOp: 1000}}
	new := []Result{{Name: "BenchmarkFast", NsPerOp: 10}}
	rows, regressed := Diff(old, new, 0.15)
	if regressed {
		t.Fatal("a 100x speedup is not a regression")
	}
	if rows[0].NsDelta > -0.98 {
		t.Errorf("NsDelta = %v, want ~ -0.99", rows[0].NsDelta)
	}
}
