package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"tieredpricing/internal/sloreport"
)

// sloPkgPrefix namespaces SLO rows inside a BENCH_*.json snapshot so the
// diff's SLO-specific rules know which rows they govern.
const sloPkgPrefix = "slo/"

// sloResults converts one load-test report into benchmark-result rows:
// one row per latency quantile (ns_per_op carries the quantile, so the
// existing ns/op regression rule gates each of them), with the run-level
// SLO metrics attached to every row so absolute floors (error rate,
// achieved-vs-target QPS) can be checked row-locally. Fleet-mode reports
// additionally yield one quantile-row set per tenant under
// "slo/<profile>/<tenant>", so a single tenant's tail regression fails
// the diff even when the aggregate stays flat; single-tenant reports
// emit exactly the rows they always did.
func sloResults(r *sloreport.Report) []Result {
	metrics := map[string]float64{
		"target-qps":   r.TargetQPS,
		"achieved-qps": r.AchievedQPS,
		"err-rate":     r.ErrorRate,
		"stale-rate":   r.StaleRate,
	}
	if r.Netflow.TargetPPS > 0 {
		metrics["netflow-pps"] = r.Netflow.AchievedPPS
	}
	if r.Proc.Sampled {
		metrics["max-rss-bytes"] = float64(r.Proc.MaxRSSBytes)
		metrics["cpu-seconds"] = r.Proc.CPUSeconds
	}
	results := quantileRows(sloPkgPrefix+r.Profile, r.Latency, int64(r.Requests), metrics, r.Build)
	for _, tn := range r.Tenants {
		tmetrics := map[string]float64{
			"requests":   float64(tn.Requests),
			"err-rate":   tn.ErrorRate,
			"stale-rate": tn.StaleRate,
		}
		results = append(results, quantileRows(
			sloPkgPrefix+r.Profile+"/"+tn.ID, tn.Latency, int64(tn.Requests), tmetrics, r.Build)...)
	}
	return results
}

// quantileRows renders one latency distribution into the four gated
// quantile rows under pkg.
func quantileRows(pkg string, l sloreport.Latency, iters int64, metrics map[string]float64, build string) []Result {
	quantiles := []struct {
		name string
		ns   int64
	}{
		{"SLOQuoteLatencyP50", l.P50Ns},
		{"SLOQuoteLatencyP90", l.P90Ns},
		{"SLOQuoteLatencyP99", l.P99Ns},
		{"SLOQuoteLatencyP999", l.P999Ns},
	}
	results := make([]Result, 0, len(quantiles))
	for _, q := range quantiles {
		results = append(results, Result{
			Pkg:        pkg,
			Name:       q.name,
			Iterations: iters,
			NsPerOp:    float64(q.ns),
			Metrics:    metrics,
			Build:      build,
		})
	}
	return results
}

// runSLO is the `benchjson slo` entry point: report JSON in, result rows
// out, ready for `benchjson diff` or `benchjson merge`.
func runSLO(args []string) int {
	fs := flag.NewFlagSet("benchjson slo", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchjson slo <report.json>")
		fmt.Fprintln(os.Stderr, "converts a cmd/loadgen SLO report into benchmark-result rows on stdout")
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	report, err := sloreport.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sloResults(report)); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// mergeResults overlays rows onto base: a row with a key already in base
// replaces it in place (the trajectory keeps one row per benchmark); new
// keys are appended in sorted order.
func mergeResults(base, overlay []Result) []Result {
	idx := make(map[string]int, len(base))
	for i := range base {
		idx[diffKey(base[i])] = i
	}
	merged := append([]Result(nil), base...)
	var added []Result
	for _, r := range overlay {
		if i, ok := idx[diffKey(r)]; ok {
			merged[i] = r
		} else {
			added = append(added, r)
		}
	}
	sort.Slice(added, func(i, j int) bool { return diffKey(added[i]) < diffKey(added[j]) })
	return append(merged, added...)
}

// runMerge is the `benchjson merge` entry point: it folds an overlay
// snapshot (e.g. fresh SLO rows) into a base BENCH_*.json on stdout.
func runMerge(args []string) int {
	fs := flag.NewFlagSet("benchjson merge", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchjson merge <base.json> <overlay.json>")
		fmt.Fprintln(os.Stderr, "overlay rows replace base rows with the same key; new rows are appended")
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := loadResults(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	overlay, err := loadResults(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(mergeResults(base, overlay)); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	return 0
}
