package main

import (
	"testing"

	"tieredpricing/internal/sloreport"
)

// sampleReport is a healthy smoke-profile run.
func sampleReport() *sloreport.Report {
	return &sloreport.Report{
		Profile:     "smoke",
		Seed:        7,
		TargetQPS:   400,
		AchievedQPS: 398.5,
		DurationSec: 5,
		Requests:    1993, OK: 1993,
		Latency: sloreport.Latency{
			P50Ns: 80_000, P90Ns: 150_000, P99Ns: 400_000, P999Ns: 900_000,
			MaxNs: 1_500_000, MeanNs: 95_000,
		},
		Netflow: sloreport.Netflow{Datagrams: 1000, TargetPPS: 200, AchievedPPS: 199},
		Proc:    sloreport.Proc{Sampled: true, MaxRSSBytes: 64 << 20, CPUSeconds: 1.25},
	}
}

func TestSLOResultRows(t *testing.T) {
	rows := sloResults(sampleReport())
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 quantiles", len(rows))
	}
	wantNs := map[string]float64{
		"SLOQuoteLatencyP50":  80_000,
		"SLOQuoteLatencyP90":  150_000,
		"SLOQuoteLatencyP99":  400_000,
		"SLOQuoteLatencyP999": 900_000,
	}
	for _, r := range rows {
		if r.Pkg != "slo/smoke" {
			t.Errorf("%s: pkg %q, want slo/smoke", r.Name, r.Pkg)
		}
		if ns, ok := wantNs[r.Name]; !ok || r.NsPerOp != ns {
			t.Errorf("%s: ns_per_op %g, want %g", r.Name, r.NsPerOp, ns)
		}
		if r.Metrics["achieved-qps"] != 398.5 || r.Metrics["err-rate"] != 0 {
			t.Errorf("%s: metrics %v missing run-level SLO fields", r.Name, r.Metrics)
		}
	}
}

// TestSLODiffP99Regression is the gate's core contract: a p99
// quote-latency degradation beyond threshold must fail the diff, an
// improvement (or a within-threshold wobble) must pass.
func TestSLODiffP99Regression(t *testing.T) {
	base := sloResults(sampleReport())

	cases := []struct {
		name     string
		p99      int64
		regender bool // expect the diff to flag a regression
	}{
		{"degradation-beyond-threshold", 700_000, true}, // +75% over 400µs
		{"improvement", 200_000, false},
		{"within-threshold", 430_000, false}, // +7.5%
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sampleReport()
			r.Latency.P99Ns = tc.p99
			if r.Latency.P999Ns < tc.p99 {
				r.Latency.P999Ns = tc.p99
			}
			fresh := sloResults(r)
			rows, regressed := Diff(base, fresh, 0.15)
			if regressed != tc.regender {
				t.Fatalf("regressed = %v, want %v", regressed, tc.regender)
			}
			// The flagged row, when any, must be the p99 one.
			for _, row := range rows {
				wantFlag := tc.regender && row.Key == "slo/smoke.SLOQuoteLatencyP99"
				if row.Regression != wantFlag {
					t.Errorf("%s: regression flag %v, want %v", row.Key, row.Regression, wantFlag)
				}
			}
		})
	}
}

// TestSLOAbsoluteFloors: error-rate and achieved-QPS floors bind on the
// fresh snapshot alone — no baseline can excuse a failing run.
func TestSLOAbsoluteFloors(t *testing.T) {
	healthy := sloResults(sampleReport())
	if v := CheckSLO(healthy, 0.01, 0.90); len(v) != 0 {
		t.Fatalf("healthy run violates floors: %v", v)
	}

	errored := sampleReport()
	errored.OK = 1900
	errored.Errors = 93
	errored.ErrorRate = float64(errored.Errors) / float64(errored.Requests) // ~4.7%
	if v := CheckSLO(sloResults(errored), 0.01, 0.90); len(v) != 1 {
		t.Fatalf("error-rate floor: got %v, want one violation", v)
	}

	starved := sampleReport()
	starved.AchievedQPS = 250 // 62% of a 400 qps target
	if v := CheckSLO(sloResults(starved), 0.01, 0.90); len(v) != 1 {
		t.Fatalf("qps floor: got %v, want one violation", v)
	}

	// Both floors broken: still one message per floor, not per quantile row.
	both := sampleReport()
	both.OK, both.Errors, both.ErrorRate = 1900, 93, 0.047
	both.AchievedQPS = 250
	if v := CheckSLO(sloResults(both), 0.01, 0.90); len(v) != 2 {
		t.Fatalf("both floors: got %v, want two violations", v)
	}

	// Non-SLO rows never face the floors.
	bench := []Result{{Pkg: "tieredpricing", Name: "BenchmarkX", NsPerOp: 10,
		Metrics: map[string]float64{"err-rate": 1.0}}}
	if v := CheckSLO(bench, 0.01, 0.90); len(v) != 0 {
		t.Fatalf("floors applied outside slo/: %v", v)
	}
}

func TestMergeResults(t *testing.T) {
	base := []Result{
		{Pkg: "tieredpricing", Name: "BenchmarkA", NsPerOp: 100},
		{Pkg: "slo/smoke", Name: "SLOQuoteLatencyP99", NsPerOp: 400_000},
	}
	overlay := []Result{
		{Pkg: "slo/smoke", Name: "SLOQuoteLatencyP99", NsPerOp: 380_000},
		{Pkg: "slo/smoke", Name: "SLOQuoteLatencyP50", NsPerOp: 80_000},
	}
	merged := mergeResults(base, overlay)
	if len(merged) != 3 {
		t.Fatalf("merged %d rows, want 3", len(merged))
	}
	if merged[0].Name != "BenchmarkA" || merged[0].NsPerOp != 100 {
		t.Errorf("untouched base row altered: %+v", merged[0])
	}
	if merged[1].NsPerOp != 380_000 {
		t.Errorf("same-key row not replaced in place: %+v", merged[1])
	}
	if merged[2].Name != "SLOQuoteLatencyP50" {
		t.Errorf("new row not appended: %+v", merged[2])
	}
}

func TestReportValidate(t *testing.T) {
	good := sampleReport()
	if err := good.Validate(); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
	broken := sampleReport()
	broken.Latency.P99Ns = broken.Latency.P999Ns + 1 // non-monotone
	if err := broken.Validate(); err == nil {
		t.Error("non-monotone quantiles accepted")
	}
	miscounted := sampleReport()
	miscounted.OK--
	if err := miscounted.Validate(); err == nil {
		t.Error("requests != ok + errors accepted")
	}
}
