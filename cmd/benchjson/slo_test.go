package main

import (
	"testing"

	"tieredpricing/internal/sloreport"
)

// sampleReport is a healthy smoke-profile run.
func sampleReport() *sloreport.Report {
	return &sloreport.Report{
		Profile:     "smoke",
		Seed:        7,
		TargetQPS:   400,
		AchievedQPS: 398.5,
		DurationSec: 5,
		Requests:    1993, OK: 1993,
		Latency: sloreport.Latency{
			P50Ns: 80_000, P90Ns: 150_000, P99Ns: 400_000, P999Ns: 900_000,
			MaxNs: 1_500_000, MeanNs: 95_000,
		},
		Netflow: sloreport.Netflow{Datagrams: 1000, TargetPPS: 200, AchievedPPS: 199},
		Proc:    sloreport.Proc{Sampled: true, MaxRSSBytes: 64 << 20, CPUSeconds: 1.25},
	}
}

func TestSLOResultRows(t *testing.T) {
	rows := sloResults(sampleReport())
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 quantiles", len(rows))
	}
	wantNs := map[string]float64{
		"SLOQuoteLatencyP50":  80_000,
		"SLOQuoteLatencyP90":  150_000,
		"SLOQuoteLatencyP99":  400_000,
		"SLOQuoteLatencyP999": 900_000,
	}
	for _, r := range rows {
		if r.Pkg != "slo/smoke" {
			t.Errorf("%s: pkg %q, want slo/smoke", r.Name, r.Pkg)
		}
		if ns, ok := wantNs[r.Name]; !ok || r.NsPerOp != ns {
			t.Errorf("%s: ns_per_op %g, want %g", r.Name, r.NsPerOp, ns)
		}
		if r.Metrics["achieved-qps"] != 398.5 || r.Metrics["err-rate"] != 0 {
			t.Errorf("%s: metrics %v missing run-level SLO fields", r.Name, r.Metrics)
		}
	}
}

// fleetReport extends the sample run with two tenant rows partitioning
// its requests.
func fleetReport() *sloreport.Report {
	r := sampleReport()
	r.Tenants = []sloreport.Tenant{
		{
			ID: "net-a", Requests: 1000, OK: 1000,
			Latency: sloreport.Latency{P50Ns: 70_000, P90Ns: 120_000, P99Ns: 300_000,
				P999Ns: 700_000, MaxNs: 1_000_000, MeanNs: 80_000},
		},
		{
			ID: "net-b", Requests: 993, OK: 983, Errors: 10,
			ErrorRate: 10.0 / 993,
			Latency: sloreport.Latency{P50Ns: 90_000, P90Ns: 180_000, P99Ns: 500_000,
				P999Ns: 1_100_000, MaxNs: 1_500_000, MeanNs: 110_000},
		},
	}
	r.Requests, r.OK, r.Errors = 1993, 1983, 10
	r.ErrorRate = 10.0 / 1993
	return r
}

// TestSLOTenantRows: a fleet-mode report emits one quantile-row set per
// tenant under slo/<profile>/<tenant>, carrying that tenant's own
// latency and error rate, on top of the unchanged run-level rows.
func TestSLOTenantRows(t *testing.T) {
	rows := sloResults(fleetReport())
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 4 run-level + 2×4 tenant", len(rows))
	}
	byPkg := map[string]int{}
	for _, r := range rows {
		byPkg[r.Pkg]++
	}
	for _, pkg := range []string{"slo/smoke", "slo/smoke/net-a", "slo/smoke/net-b"} {
		if byPkg[pkg] != 4 {
			t.Errorf("pkg %s: %d rows, want 4", pkg, byPkg[pkg])
		}
	}
	for _, r := range rows {
		switch r.Pkg {
		case "slo/smoke/net-a":
			if r.Name == "SLOQuoteLatencyP99" && r.NsPerOp != 300_000 {
				t.Errorf("net-a p99 %g, want tenant's own 300000", r.NsPerOp)
			}
			if r.Metrics["err-rate"] != 0 {
				t.Errorf("net-a err-rate %g, want 0", r.Metrics["err-rate"])
			}
		case "slo/smoke/net-b":
			if r.Name == "SLOQuoteLatencyP99" && r.NsPerOp != 500_000 {
				t.Errorf("net-b p99 %g, want tenant's own 500000", r.NsPerOp)
			}
			if r.Metrics["err-rate"] != 10.0/993 {
				t.Errorf("net-b err-rate %g, want %g", r.Metrics["err-rate"], 10.0/993)
			}
		}
	}

	// A single tenant's p99 regression fails the diff even when the
	// run-level p99 is flat.
	degraded := fleetReport()
	degraded.Tenants[1].Latency.P99Ns = 900_000 // +80% on net-b only
	_, regressed := Diff(sloResults(fleetReport()), sloResults(degraded), 0.15)
	if !regressed {
		t.Error("per-tenant p99 regression not flagged")
	}

	// The per-tenant error-rate floor binds on the tenant's own rate:
	// 0.0075 passes the run level (10/1993) but fails net-b (10/993).
	if v := CheckSLO(sloResults(fleetReport()), 0.0075, 0.90); len(v) != 1 {
		t.Errorf("net-b error rate %.4f above floor: got %v, want one violation", 10.0/993, v)
	}
}

// TestSLODiffP99Regression is the gate's core contract: a p99
// quote-latency degradation beyond threshold must fail the diff, an
// improvement (or a within-threshold wobble) must pass.
func TestSLODiffP99Regression(t *testing.T) {
	base := sloResults(sampleReport())

	cases := []struct {
		name     string
		p99      int64
		regender bool // expect the diff to flag a regression
	}{
		{"degradation-beyond-threshold", 700_000, true}, // +75% over 400µs
		{"improvement", 200_000, false},
		{"within-threshold", 430_000, false}, // +7.5%
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sampleReport()
			r.Latency.P99Ns = tc.p99
			if r.Latency.P999Ns < tc.p99 {
				r.Latency.P999Ns = tc.p99
			}
			fresh := sloResults(r)
			rows, regressed := Diff(base, fresh, 0.15)
			if regressed != tc.regender {
				t.Fatalf("regressed = %v, want %v", regressed, tc.regender)
			}
			// The flagged row, when any, must be the p99 one.
			for _, row := range rows {
				wantFlag := tc.regender && row.Key == "slo/smoke.SLOQuoteLatencyP99"
				if row.Regression != wantFlag {
					t.Errorf("%s: regression flag %v, want %v", row.Key, row.Regression, wantFlag)
				}
			}
		})
	}
}

// TestSLOAbsoluteFloors: error-rate and achieved-QPS floors bind on the
// fresh snapshot alone — no baseline can excuse a failing run.
func TestSLOAbsoluteFloors(t *testing.T) {
	healthy := sloResults(sampleReport())
	if v := CheckSLO(healthy, 0.01, 0.90); len(v) != 0 {
		t.Fatalf("healthy run violates floors: %v", v)
	}

	errored := sampleReport()
	errored.OK = 1900
	errored.Errors = 93
	errored.ErrorRate = float64(errored.Errors) / float64(errored.Requests) // ~4.7%
	if v := CheckSLO(sloResults(errored), 0.01, 0.90); len(v) != 1 {
		t.Fatalf("error-rate floor: got %v, want one violation", v)
	}

	starved := sampleReport()
	starved.AchievedQPS = 250 // 62% of a 400 qps target
	if v := CheckSLO(sloResults(starved), 0.01, 0.90); len(v) != 1 {
		t.Fatalf("qps floor: got %v, want one violation", v)
	}

	// Both floors broken: still one message per floor, not per quantile row.
	both := sampleReport()
	both.OK, both.Errors, both.ErrorRate = 1900, 93, 0.047
	both.AchievedQPS = 250
	if v := CheckSLO(sloResults(both), 0.01, 0.90); len(v) != 2 {
		t.Fatalf("both floors: got %v, want two violations", v)
	}

	// Non-SLO rows never face the floors.
	bench := []Result{{Pkg: "tieredpricing", Name: "BenchmarkX", NsPerOp: 10,
		Metrics: map[string]float64{"err-rate": 1.0}}}
	if v := CheckSLO(bench, 0.01, 0.90); len(v) != 0 {
		t.Fatalf("floors applied outside slo/: %v", v)
	}
}

func TestMergeResults(t *testing.T) {
	base := []Result{
		{Pkg: "tieredpricing", Name: "BenchmarkA", NsPerOp: 100},
		{Pkg: "slo/smoke", Name: "SLOQuoteLatencyP99", NsPerOp: 400_000},
	}
	overlay := []Result{
		{Pkg: "slo/smoke", Name: "SLOQuoteLatencyP99", NsPerOp: 380_000},
		{Pkg: "slo/smoke", Name: "SLOQuoteLatencyP50", NsPerOp: 80_000},
	}
	merged := mergeResults(base, overlay)
	if len(merged) != 3 {
		t.Fatalf("merged %d rows, want 3", len(merged))
	}
	if merged[0].Name != "BenchmarkA" || merged[0].NsPerOp != 100 {
		t.Errorf("untouched base row altered: %+v", merged[0])
	}
	if merged[1].NsPerOp != 380_000 {
		t.Errorf("same-key row not replaced in place: %+v", merged[1])
	}
	if merged[2].Name != "SLOQuoteLatencyP50" {
		t.Errorf("new row not appended: %+v", merged[2])
	}
}

func TestReportValidate(t *testing.T) {
	good := sampleReport()
	if err := good.Validate(); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
	broken := sampleReport()
	broken.Latency.P99Ns = broken.Latency.P999Ns + 1 // non-monotone
	if err := broken.Validate(); err == nil {
		t.Error("non-monotone quantiles accepted")
	}
	miscounted := sampleReport()
	miscounted.OK--
	if err := miscounted.Validate(); err == nil {
		t.Error("requests != ok + errors accepted")
	}

	// Fleet-mode invariants.
	if err := fleetReport().Validate(); err != nil {
		t.Fatalf("healthy fleet report rejected: %v", err)
	}
	unbalanced := fleetReport()
	unbalanced.Tenants[0].Requests += 5
	unbalanced.Tenants[0].OK += 5
	if err := unbalanced.Validate(); err == nil {
		t.Error("tenant rows not partitioning the run accepted")
	}
	dup := fleetReport()
	dup.Tenants[1].ID = dup.Tenants[0].ID
	if err := dup.Validate(); err == nil {
		t.Error("duplicate tenant row accepted")
	}
	badTail := fleetReport()
	badTail.Tenants[0].Latency.P99Ns = badTail.Tenants[0].Latency.P999Ns + 1
	if err := badTail.Validate(); err == nil {
		t.Error("non-monotone tenant quantiles accepted")
	}
}
