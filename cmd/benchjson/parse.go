package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads `go test -bench` output and extracts every benchmark
// result line. Non-benchmark lines (goos/goarch/cpu headers, PASS/ok
// trailers, test log output) are skipped; "pkg:" headers set the package
// attributed to subsequent results.
func Parse(r io.Reader) ([]Result, error) {
	var (
		results []Result
		pkg     string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", line, err)
		}
		if ok {
			res.Pkg = pkg
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// parseLine decodes one result line of the form
//
//	BenchmarkName-8  1234  56.7 ns/op  8 B/op  1 allocs/op  97 p99-ns
//
// ok is false for lines that start with "Benchmark" but are not results
// (e.g. a bare name echoed when -v is on).
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false, nil
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil // not a result line
	}
	res := Result{Name: name, Iterations: iters}
	seenNs := false
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	if !seenNs {
		return Result{}, false, fmt.Errorf("no ns/op metric")
	}
	return res, true, nil
}
