package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSelectedExperimentWithCSV(t *testing.T) {
	csvDir := t.TempDir()
	// Silence stdout for the table print.
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	runErr := run([]string{"fig4"}, 1, 2, csvDir, false)
	mdErr := run([]string{"fig4"}, 1, 2, "", true)
	os.Stdout = old
	devNull.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if mdErr != nil {
		t.Fatal(mdErr)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "fig4_0.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"nonesuch"}, 1, 1, "", false); err == nil {
		t.Error("expected error for unknown experiment")
	}
}
