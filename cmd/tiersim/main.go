// Command tiersim regenerates the paper's tables and figures from the
// synthetic substrates.
//
// Usage:
//
//	tiersim list                 # index of reproducible artifacts
//	tiersim run fig8 fig9        # run selected experiments
//	tiersim run all              # run everything
//	tiersim -seed 7 run table1   # change the generation seed
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"tieredpricing/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for all synthetic data generation")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	markdown := flag.Bool("md", false, "print tables as GitHub-flavored markdown instead of ASCII")
	workers := flag.Int("parallel", runtime.NumCPU(),
		"worker goroutines for fanning out experiments, seeds and repricings (output is identical for any value; 1 = serial)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		list()
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "tiersim: run needs experiment IDs (or 'all')")
			os.Exit(2)
		}
		if err := run(args[1:], *seed, *workers, *csvDir, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "tiersim:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "tiersim: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `tiersim — regenerate the SIGCOMM'11 tiered-pricing evaluation

usage:
  tiersim [-seed N] [-parallel N] [-csv DIR] [-md] run <id>... | all
  tiersim list
`)
}

func list() {
	fmt.Println("ID        TITLE")
	for _, e := range experiments.All() {
		fmt.Printf("%-9s %s\n", e.ID, e.Title)
		fmt.Printf("          paper: %s\n", e.Paper)
	}
}

func run(ids []string, seed int64, workers int, csvDir string, markdown bool) error {
	if len(ids) == 1 && ids[0] == "all" {
		ids = ids[:0]
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	// Experiments fan out across workers; results come back in submission
	// order, so the rendered output matches a serial run byte for byte.
	results, err := experiments.RunAll(experiments.Options{Seed: seed, Workers: workers}, ids...)
	if err != nil {
		return err
	}
	for i, res := range results {
		id := ids[i]
		if markdown {
			fmt.Printf("### %s — %s\n\n", res.ID, res.Title)
			for _, table := range res.Tables {
				if err := table.WriteMarkdown(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
			}
		} else if err := res.WriteASCII(os.Stdout); err != nil {
			return err
		}
		if csvDir != "" {
			for i, table := range res.Tables {
				name := fmt.Sprintf("%s_%d.csv", id, i)
				f, err := os.Create(filepath.Join(csvDir, name))
				if err != nil {
					return err
				}
				if err := table.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
