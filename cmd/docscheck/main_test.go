package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materialises a map of path → content under a temp root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, content := range files {
		full := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// healthyTree is a minimal repo that passes every lint.
func healthyTree() map[string]string {
	return map[string]string{
		"README.md": "see [docs/API.md](docs/API.md) and [ops](docs/OPERATIONS.md)\n" +
			"layout: cmd/tierd internal/server\n",
		"docs/API.md":        "back to [README](../README.md#layout)\n",
		"docs/OPERATIONS.md": "metrics: tierd_quote_requests_total\n",
		"cmd/tierd/main.go":  "package main\n",
		"internal/server/server.go": "package server\n" +
			"const name = \"tierd_quote_requests_total\"\n",
		"internal/server/server_test.go": "package server\n" +
			"const testOnly = \"tierd_test_only_metric\"\n",
	}
}

func TestDocscheckHealthy(t *testing.T) {
	root := writeTree(t, healthyTree())
	v, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("healthy tree flagged: %v", v)
	}
}

func TestDocscheckBrokenLink(t *testing.T) {
	files := healthyTree()
	files["docs/API.md"] = "see [gone](missing.md) and [ok](https://example.com/x.md)\n"
	v, err := check(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "missing.md") {
		t.Fatalf("broken relative link not flagged (external must be skipped): %v", v)
	}
}

func TestDocscheckLayoutMapGap(t *testing.T) {
	files := healthyTree()
	files["internal/newpkg/x.go"] = "package newpkg\n"
	v, err := check(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "internal/newpkg") {
		t.Fatalf("undocumented package not flagged: %v", v)
	}
	// A directory without Go files (e.g. docs assets) is not a package.
	files["internal/newpkg/x.go"] = ""
	delete(files, "internal/newpkg/x.go")
	files["internal/assets/data.txt"] = "not go\n"
	v, err = check(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("non-package directory flagged: %v", v)
	}
}

func TestDocscheckUndocumentedMetric(t *testing.T) {
	files := healthyTree()
	files["internal/server/metrics.go"] = "package server\n" +
		"const added = \"tierd_brand_new_total\"\n"
	v, err := check(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "tierd_brand_new_total") {
		t.Fatalf("undocumented metric not flagged: %v", v)
	}
	// Test-file metric names don't bind the manual.
	files["internal/server/metrics.go"] = "package server\n"
	v, err = check(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("test-only metric name flagged: %v", v)
	}
}
