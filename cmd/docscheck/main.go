// Command docscheck is the repo's documentation lint, run by
// `./ci.sh docs`. It enforces three invariants that otherwise rot
// silently:
//
//  1. Every relative markdown link in the repo's .md files resolves to
//     a file or directory that exists (external URLs and pure anchors
//     are skipped).
//  2. README.md's repo-layout map names every cmd/ and internal/
//     package, so a new package cannot land without an entry in the
//     map a newcomer reads first.
//  3. Every exported Prometheus-style metric name minted in
//     internal/server (the tierd_* families) appears in
//     docs/OPERATIONS.md, so the operator manual cannot drift behind
//     the exposition.
//
// Violations are listed one per line on stderr; any violation exits 1.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	violations, err := check(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "docscheck:", v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// check runs every lint against the tree at root and returns the
// violation messages in deterministic order.
func check(root string) ([]string, error) {
	var violations []string

	mds, err := markdownFiles(root)
	if err != nil {
		return nil, err
	}
	for _, md := range mds {
		v, err := checkLinks(root, md)
		if err != nil {
			return nil, err
		}
		violations = append(violations, v...)
	}

	v, err := checkLayoutMap(root)
	if err != nil {
		return nil, err
	}
	violations = append(violations, v...)

	v, err = checkMetricsDocumented(root)
	if err != nil {
		return nil, err
	}
	violations = append(violations, v...)

	return violations, nil
}

// markdownFiles lists every .md file under root, skipping VCS and
// build-output directories.
func markdownFiles(root string) ([]string, error) {
	var mds []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mds = append(mds, path)
		}
		return nil
	})
	sort.Strings(mds)
	return mds, err
}

// linkRE matches markdown inline links and images: [text](target) /
// ![alt](target). Reference-style links are rare here and not checked.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkLinks verifies every relative link in one markdown file points
// at an existing file or directory.
func checkLinks(root, md string) ([]string, error) {
	b, err := os.ReadFile(md)
	if err != nil {
		return nil, err
	}
	var violations []string
	for _, m := range linkRE.FindAllStringSubmatch(string(b), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue // external
		}
		target, _, _ = strings.Cut(target, "#")
		if target == "" {
			continue // pure in-page anchor
		}
		resolved := filepath.Join(filepath.Dir(md), target)
		if _, err := os.Stat(resolved); err != nil {
			rel, rerr := filepath.Rel(root, md)
			if rerr != nil {
				rel = md
			}
			violations = append(violations, fmt.Sprintf("%s: broken link %q", rel, m[1]))
		}
	}
	return violations, nil
}

// goPackages lists the immediate subdirectories of dir that contain .go
// files — the packages the layout map must cover.
func goPackages(root, dir string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var pkgs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(root, dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range sub {
			if strings.HasSuffix(f.Name(), ".go") {
				pkgs = append(pkgs, dir+"/"+e.Name())
				break
			}
		}
	}
	return pkgs, nil
}

// checkLayoutMap verifies README.md mentions every cmd/ and internal/
// package by its path.
func checkLayoutMap(root string) ([]string, error) {
	b, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return nil, err
	}
	readme := string(b)
	var violations []string
	for _, dir := range []string{"cmd", "internal"} {
		pkgs, err := goPackages(root, dir)
		if err != nil {
			return nil, err
		}
		for _, pkg := range pkgs {
			if !strings.Contains(readme, pkg) {
				violations = append(violations,
					fmt.Sprintf("README.md: repo-layout map does not mention %s", pkg))
			}
		}
	}
	return violations, nil
}

// metricRE matches the tierd_* metric names internal/server mints in
// its exposition writers.
var metricRE = regexp.MustCompile(`tierd_[a-z0-9_]+`)

// checkMetricsDocumented extracts every tierd_* metric name from
// internal/server's non-test sources and requires each to appear in
// docs/OPERATIONS.md.
func checkMetricsDocumented(root string) ([]string, error) {
	srcDir := filepath.Join(root, "internal", "server")
	entries, err := os.ReadDir(srcDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, m := range metricRE.FindAllString(string(b), -1) {
			names[m] = true
		}
	}
	opsPath := filepath.Join(root, "docs", "OPERATIONS.md")
	b, err := os.ReadFile(opsPath)
	if err != nil {
		if os.IsNotExist(err) && len(names) > 0 {
			return []string{"docs/OPERATIONS.md: missing (required to document exported metrics)"}, nil
		}
		return nil, err
	}
	ops := string(b)
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	var violations []string
	for _, n := range sorted {
		if !strings.Contains(ops, n) {
			violations = append(violations,
				fmt.Sprintf("docs/OPERATIONS.md: exported metric %s undocumented", n))
		}
	}
	return violations, nil
}
