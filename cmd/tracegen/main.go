// Command tracegen synthesizes one of the paper's three network datasets
// and writes it out as raw NetFlow v5 export streams (one file per
// exporting router) plus the GeoIP database needed to resolve endpoints —
// the on-disk form an operator's collection infrastructure would produce.
//
// Usage:
//
//	tracegen -dataset euisp -seed 1 -out /tmp/euisp
//
// The output directory will contain:
//
//	<router>.nf5     NetFlow export stream of each router
//	geoip.csv        prefix → location database
//	meta.txt         dataset parameters (blended rate, window, sampling)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tieredpricing/internal/traces"
)

func main() {
	dataset := flag.String("dataset", "euisp", "dataset to synthesize (euisp, cdn, internet2)")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "output directory (required)")
	toStdout := flag.Bool("stdout", false,
		"additionally write the concatenated export streams to stdout (for piping into tierd -stdin)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dataset, *seed, *out, *toStdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(dataset string, seed int64, out string, toStdout bool) error {
	ds, err := traces.ByName(dataset, seed)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		return err
	}
	var total int
	routers := make([]string, 0, len(streams))
	for router := range streams {
		routers = append(routers, router)
	}
	sort.Strings(routers)
	for _, router := range routers {
		stream := streams[router]
		name := sanitize(router) + ".nf5"
		if err := os.WriteFile(filepath.Join(out, name), stream, 0o644); err != nil {
			return err
		}
		total += len(stream)
		if toStdout {
			// Export packets are self-framing, so router streams simply
			// concatenate; the collector de-duplicates across routers.
			if _, err := os.Stdout.Write(stream); err != nil {
				return err
			}
		}
	}
	geo, err := os.Create(filepath.Join(out, "geoip.csv"))
	if err != nil {
		return err
	}
	if err := ds.Geo.WriteCSV(geo); err != nil {
		geo.Close()
		return err
	}
	if err := geo.Close(); err != nil {
		return err
	}
	var meta strings.Builder
	if err := traces.WriteMeta(&meta, traces.Meta{
		Dataset: ds.Name, Seed: seed, Flows: len(ds.Flows),
		P0: ds.P0, DurationSec: ds.DurationSec,
		Sampling: int(ds.SamplingInterval), Routers: len(streams),
	}); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, "meta.txt"), []byte(meta.String()), 0o644); err != nil {
		return err
	}
	truth, err := os.Create(filepath.Join(out, "truth.csv"))
	if err != nil {
		return err
	}
	if err := traces.WriteFlowsCSV(truth, ds.Flows); err != nil {
		truth.Close()
		return err
	}
	if err := truth.Close(); err != nil {
		return err
	}
	st, err := ds.Stats()
	if err != nil {
		return err
	}
	// The summary goes to stderr so that -stdout leaves stdout a pure
	// binary export stream.
	fmt.Fprintf(os.Stderr, "wrote %d router streams (%d bytes) + geoip.csv to %s\n", len(streams), total, out)
	fmt.Fprintf(os.Stderr, "dataset %s: %d flows, %.1f Gbps, w-avg distance %.0f mi, demand CV %.2f\n",
		ds.Name, st.Flows, st.AggregateGbps, st.WeightedMeanDistance, st.DemandCV)
	return nil
}

// sanitize makes a router name filesystem-friendly.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		case r == ' ':
			return '_'
		default:
			return '-'
		}
	}, s)
}
