package main

import (
	"os"
	"path/filepath"
	"testing"

	"tieredpricing/internal/traces"
)

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"New York":    "New_York",
		"Zürich":      "Z-rich",
		"plain-name_": "plain-name_",
		"a/b":         "a-b",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunWritesTraceDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	if err := run("euisp", 7, dir, false); err != nil {
		t.Fatal(err)
	}
	meta, err := traces.ReadMetaFile(filepath.Join(dir, "meta.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Dataset != "euisp" || meta.Seed != 7 || meta.Routers < 2 {
		t.Errorf("unexpected meta %+v", meta)
	}
	for _, want := range []string{"meta.txt", "geoip.csv", "truth.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
	streams, err := filepath.Glob(filepath.Join(dir, "*.nf5"))
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) < 2 {
		t.Errorf("only %d router streams", len(streams))
	}
	if err := run("nonesuch", 1, dir, false); err == nil {
		t.Error("expected error for unknown dataset")
	}
}
