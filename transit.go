// Package transit is the public API of this repository: a library for
// analyzing destination-based tiered pricing in the Internet transit
// market, reproducing Valancius et al., "How Many Tiers? Pricing in the
// Internet Transit Market" (SIGCOMM 2011).
//
// The core workflow mirrors the paper's Figure 7:
//
//  1. Obtain per-flow traffic demands — from your own measurements, from
//     the built-in synthetic datasets (Dataset*, calibrated to the
//     paper's Table 1), or by replaying NetFlow traces through the
//     collection pipeline in internal/netflow + internal/demandfit.
//  2. Pick a demand model (CED or Logit) and a cost model (Linear,
//     Concave, Regional, DestType) and fit a Market with NewMarket: the
//     library derives per-flow valuations and reconciles relative costs
//     with the observed blended rate by assuming the ISP is already
//     profit-maximizing.
//  3. Run bundling strategies (Optimal, ProfitWeighted, ...) for a given
//     tier count and read off profit-maximizing tier prices, profit, and
//     the profit-capture metric.
//
// A minimal session:
//
//	flows := []transit.Flow{
//		{ID: "local", Demand: 800, Distance: 30},
//		{ID: "continental", Demand: 300, Distance: 400},
//		{ID: "transatlantic", Demand: 150, Distance: 3600},
//	}
//	m, err := transit.NewMarket(flows, transit.CED{Alpha: 1.1},
//		transit.Linear{Theta: 0.2}, 20 /* $/Mbps blended */)
//	if err != nil { ... }
//	out, err := m.Run(transit.Optimal{}, 3)
//	fmt.Println(out.Prices, out.Capture)
//
// Everything in internal/ is implemented from scratch on the standard
// library, including the substrates: NetFlow v5 codec and deduplicating
// collector, GeoIP longest-prefix-match database, PoP topologies with
// shortest-path routing, a BGP subset with tier-tagging extended
// communities, and both accounting architectures of the paper's §5.
package transit

import (
	"fmt"
	"io"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/experiments"
	"tieredpricing/internal/traces"
)

// Flow is one priced traffic aggregate; see econ.Flow.
type Flow = econ.Flow

// Region classifies a flow's destination (metro/national/international).
type Region = econ.Region

// Region values.
const (
	RegionMetro         = econ.RegionMetro
	RegionNational      = econ.RegionNational
	RegionInternational = econ.RegionInternational
)

// Model is a demand-model family (CED or Logit).
type Model = econ.Model

// CED is constant-elasticity demand (paper §3.2.1); Alpha > 1.
type CED = econ.CED

// Logit is discrete-choice demand (paper §3.2.2); Alpha > 0, S0 ∈ (0,1).
type Logit = econ.Logit

// CostModel maps flows to relative unit costs (paper §3.3).
type CostModel = cost.Model

// The four cost models of §3.3.
type (
	// Linear is cost proportional to distance plus a base fraction θ.
	Linear = cost.Linear
	// Concave is cost logarithmic in distance (the Figure 6 fit).
	Concave = cost.Concave
	// Regional prices metro/national/international classes as 1/2^θ/3^θ.
	Regional = cost.Regional
	// DestType prices off-net traffic at a multiple of on-net traffic.
	DestType = cost.DestType
)

// Strategy groups flows into pricing tiers (paper §4.2.1).
type Strategy = bundling.Strategy

// The bundling strategies of §4.2.1 (and the §4.3.1 class-aware variant).
type (
	Optimal        = bundling.Optimal
	DemandWeighted = bundling.DemandWeighted
	CostWeighted   = bundling.CostWeighted
	ProfitWeighted = bundling.ProfitWeighted
	CostDivision   = bundling.CostDivision
	IndexDivision  = bundling.IndexDivision
	ClassAware     = bundling.ClassAware
)

// Strategies returns one instance of every bundling strategy, in the
// paper's presentation order.
func Strategies() []Strategy {
	return []Strategy{
		Optimal{}, CostWeighted{}, ProfitWeighted{}, DemandWeighted{},
		CostDivision{}, IndexDivision{},
	}
}

// StrategyByName resolves a strategy by its paper name (e.g.
// "profit-weighted", "cost division", "optimal", "class-aware
// profit-weighted").
func StrategyByName(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.Name() == name {
			return s, nil
		}
	}
	if s := (ClassAware{Inner: ProfitWeighted{}}); s.Name() == name {
		return s, nil
	}
	return nil, fmt.Errorf("transit: unknown strategy %q", name)
}

// Market is a fitted transit market; see core.Market.
type Market = core.Market

// Outcome is the result of one bundling counterfactual; see core.Outcome.
type Outcome = core.Outcome

// NewMarket fits a market from observed flows per the paper's §4.1: it
// derives valuations from demands at the blended rate p0 and scales the
// cost model's relative costs so p0 is the single-bundle optimum.
func NewMarket(flows []Flow, demand Model, costModel CostModel, p0 float64) (*Market, error) {
	return core.NewMarket(flows, demand, costModel, p0)
}

// SplitByDestType splits every flow into on-net/off-net parts with the
// given on-net demand fraction (the destination-type cost model's θ).
func SplitByDestType(flows []Flow, theta float64) ([]Flow, error) {
	return core.SplitByDestType(flows, theta)
}

// AggregateFlows coarsens a flow set to at most k aggregates by merging
// cost-adjacent flows, preserving total demand and demand-weighted
// distance — the market-granularity knob of the paper's §1 discussion.
func AggregateFlows(flows []Flow, k int) ([]Flow, error) {
	return core.AggregateFlows(flows, k)
}

// Dataset is a synthetic network trace calibrated to the paper's Table 1.
type Dataset = traces.Dataset

// DatasetEUISP synthesizes the European transit ISP dataset.
func DatasetEUISP(seed int64) (*Dataset, error) { return traces.EUISP(seed) }

// DatasetCDN synthesizes the international CDN dataset.
func DatasetCDN(seed int64) (*Dataset, error) { return traces.CDN(seed) }

// DatasetInternet2 synthesizes the research-backbone dataset.
func DatasetInternet2(seed int64) (*Dataset, error) { return traces.Internet2(seed) }

// DatasetByName resolves "euisp", "cdn" or "internet2".
func DatasetByName(name string, seed int64) (*Dataset, error) {
	return traces.ByName(name, seed)
}

// DatasetNames lists the built-in dataset names.
func DatasetNames() []string { return traces.Names() }

// RunExperiment regenerates one of the paper's tables or figures by ID
// ("fig1".."fig17", "table1") and writes its tables to w. See
// ExperimentIDs for the index.
func RunExperiment(id string, seed int64, w io.Writer) error {
	e, err := experiments.Get(id)
	if err != nil {
		return err
	}
	res, err := e.Run(experiments.Options{Seed: seed})
	if err != nil {
		return err
	}
	return res.WriteASCII(w)
}

// ExperimentIDs lists every reproducible paper artifact with its title.
func ExperimentIDs() map[string]string {
	out := map[string]string{}
	for _, e := range experiments.All() {
		out[e.ID] = e.Title
	}
	return out
}
