#!/bin/sh
# Tier-1 gate and perf tracking.
#
#   ./ci.sh            — the gate: everything a change must pass before
#                        it lands.
#   ./ci.sh bench      — timed benchmark run; writes BENCH_<date>.json
#                        (name, ns/op, allocs/op, custom metrics) via
#                        cmd/benchjson so the perf trajectory is
#                        machine-readable.
#   ./ci.sh bench-diff — regression gate: re-runs the benchmarks and
#                        compares against the newest committed
#                        BENCH_*.json via `benchjson diff`; fails when
#                        any benchmark's ns/op regressed by more than
#                        BENCH_THRESHOLD (default 0.15 = +15%).
#
# Gate steps, in order (each must pass):
#   1. go vet        — static analysis across every package
#   2. go build      — the full module compiles, commands included
#   3. go test -race — the whole test suite under the race detector,
#                      covering the parallel experiment engine, the
#                      concurrent NetFlow collector, the sliding-window
#                      repricer (including the failure-path snapshot
#                      retention tests that hammer Quote against
#                      injected reprice failures), and the registry
#   4. chaos stage   — the tierd fault-injection e2e re-run explicitly
#                      at a pinned seed (CHAOS_SEED, default 4242), so
#                      the fault schedule the gate certifies is the one
#                      a failure replays locally
#   5. benchmarks    — every benchmark compiles and runs one iteration
#                      (catches bit-rotted benchmark code without paying
#                      for a timed run; use `./ci.sh bench` for real
#                      numbers)
#   6. fuzz smoke    — every netflow/bgp fuzz target actually fuzzes for
#                      a short budget (FUZZTIME, default 10s each), not
#                      just replays its seed corpus
set -eu

cd "$(dirname "$0")"

bench() {
    date_tag=$(date +%F)
    out="BENCH_${date_tag}.json"
    echo "==> go test -bench=. -benchmem ./... > ${out}"
    go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson > "$out"
    echo "==> wrote $out"
}

bench_diff() {
    base=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
    if [ -z "$base" ]; then
        echo "bench-diff: no committed BENCH_*.json baseline" >&2
        exit 1
    fi
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    echo "==> go test -bench=. -benchmem ./... (fresh run)"
    go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson > "$tmp"
    echo "==> benchjson diff -threshold ${BENCH_THRESHOLD:-0.15} $base <fresh>"
    go run ./cmd/benchjson diff -threshold "${BENCH_THRESHOLD:-0.15}" "$base" "$tmp"
    echo "==> bench-diff passed"
}

fuzz_smoke() {
    # `go test -fuzz` accepts only one target per run, so iterate.
    for target in FuzzDecodePacket FuzzUDPDatagramPath FuzzReader; do
        echo "==> fuzz ${target} (internal/netflow, ${FUZZTIME})"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime="$FUZZTIME" ./internal/netflow
    done
    for target in FuzzDecodeUpdate FuzzDecodeBody FuzzDecodeOpen; do
        echo "==> fuzz ${target} (internal/bgp, ${FUZZTIME})"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime="$FUZZTIME" ./internal/bgp
    done
}

if [ "${1:-}" = "bench" ]; then
    bench
    exit 0
fi

if [ "${1:-}" = "bench-diff" ]; then
    bench_diff
    exit 0
fi

FUZZTIME="${FUZZTIME:-10s}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

CHAOS_SEED="${CHAOS_SEED:-4242}"
echo "==> chaos stage: CHAOS_SEED=${CHAOS_SEED} go test -race -run TestTierdChaos ./cmd/tierd"
CHAOS_SEED="$CHAOS_SEED" go test -race -count=1 -run 'TestTierdChaos' ./cmd/tierd

echo "==> go test -run='^$' -bench=. -benchtime=1x ./..."
go test -run='^$' -bench=. -benchtime=1x ./...

fuzz_smoke

echo "==> ci: all gates passed"
