#!/bin/sh
# Tier-1 gate and perf tracking.
#
#   ./ci.sh            — the gate: everything a change must pass before
#                        it lands.
#   ./ci.sh bench      — timed benchmark run; writes BENCH_<date>.json
#                        (name, ns/op, allocs/op, custom metrics) via
#                        cmd/benchjson so the perf trajectory is
#                        machine-readable.
#   ./ci.sh bench-diff — regression gate: re-runs the benchmarks and
#                        compares against the newest committed
#                        BENCH_*.json via `benchjson diff`; fails when
#                        any benchmark's ns/op regressed by more than
#                        BENCH_THRESHOLD (default 0.15 = +15%).
#   ./ci.sh slo        — serving-path SLO gate: generates a trace at a
#                        deterministic seed, starts a real tierd, runs
#                        cmd/loadgen's smoke profile against it (quote
#                        load + NetFlow push together), converts the SLO
#                        report into benchmark rows, diffs them against
#                        the newest committed BENCH_*.json (p50/p99/p999
#                        quote-latency regressions beyond SLO_THRESHOLD
#                        — default 1.0 = +100%, latency on shared boxes
#                        is noisy — and absolute error-rate/QPS floors
#                        fail the gate), then merges the fresh record
#                        into that BENCH file so the trajectory carries
#                        it. The daemon runs with durability on
#                        (-data-dir), so the gate certifies the quote
#                        SLO with the WAL and checkpoint loop active.
#                        With no committed baseline the latency diff is
#                        skipped with a warning instead of failing.
#                        Knobs: SLO_QPS (400), SLO_DURATION (5s),
#                        SLO_SEED (7), SLO_THRESHOLD, SLO_HTTP_PORT
#                        (18080), SLO_UDP_PORT (12055).
#   ./ci.sh ingest     — ingest-scaling gate: benchmarks the sharded
#                        ingest path (window shard routing + merge, and
#                        the full UDP receive path with batched reads)
#                        at shards=1 through 8 plus NumCPU, and the
#                        zero-alloc packet decode; converts the runs to
#                        rows via cmd/benchjson, diffs ns/op against
#                        the newest committed BENCH_*.json
#                        (INGEST_THRESHOLD, default 0.5 = +50% — ingest
#                        benches on shared CI boxes are noisy), and
#                        merges the fresh rows into that file so the
#                        shards=1 vs shards=N scaling curve travels
#                        with the repo. With no committed baseline the
#                        rows are written to a fresh BENCH_<date>.json
#                        instead of diffed. INGEST_BENCHTIME (default
#                        300ms) trades precision for wall time.
#   ./ci.sh recover    — durability gate alone: the crash-recovery
#                        parity matrix and the kill -9 e2e at every
#                        pinned seed (RECOVER_SEEDS, default
#                        "1 7 99 4242 31337").
#   ./ci.sh tenants    — multi-tenant gate alone: fleet-vs-solo tier
#                        table parity (one 3-tenant tierd against three
#                        single-tenant tierds over partitioned traces,
#                        byte-identical before and after kill -9 of all
#                        four; TENANTS_SEED pins the trace and kill
#                        schedule), WFQ fairness (a heavy tenant cannot
#                        push a light tenant's quote p99 past 2× its
#                        solo baseline; runs without the race detector —
#                        the bound is latency), tenant isolation under
#                        the race detector, the internal/tenant unit
#                        suite, and the fleet-mode loadgen e2e.
#   ./ci.sh history    — durable-history + hot-reload gate: the
#                        internal/histstore unit suite under the race
#                        detector, the store/ring parity property test
#                        and the SIGHUP reload-under-load test (zero
#                        non-200 quote responses, monotone config
#                        epochs) under -race, the idempotent-restore
#                        double-append test, and the out-of-process
#                        kill -9 + SIGHUP e2e (a real tierd with
#                        -history-store and -config, reloaded, killed,
#                        restarted; /v1/history must still serve epochs
#                        older than the ring and every retained
#                        checkpoint) — each replayed at a pinned seed
#                        (HISTORY_SEED, default 4242). Then the
#                        histstore append/scan/open benchmarks run
#                        (HISTORY_BENCHTIME, default 300ms), diff
#                        against the newest committed BENCH_*.json
#                        (HISTORY_THRESHOLD, default 0.5 = +50%), and
#                        merge in so the append-throughput row travels
#                        with the repo.
#   ./ci.sh docs       — documentation lint alone (cmd/docscheck):
#                        every relative markdown link resolves, the
#                        README repo-layout map names every cmd/ and
#                        internal/ package, and every tierd_* metric
#                        minted in internal/server is documented in
#                        docs/OPERATIONS.md.
#
# Gate steps, in order (each must pass):
#   1. go vet        — static analysis across every package
#   2. go build      — the full module compiles, commands included
#   3. go test -race — the whole test suite under the race detector,
#                      covering the parallel experiment engine, the
#                      concurrent NetFlow collector, the sliding-window
#                      repricer (including the failure-path snapshot
#                      retention tests that hammer Quote against
#                      injected reprice failures), and the registry
#   4. chaos stage   — the tierd fault-injection e2e re-run explicitly
#                      at a pinned seed (CHAOS_SEED, default 4242), so
#                      the fault schedule the gate certifies is the one
#                      a failure replays locally
#   5. recover stage — crash-recovery parity (in-process fault matrix +
#                      out-of-process kill -9) replayed at every pinned
#                      seed in RECOVER_SEEDS
#   6. tenants stage — the multi-tenant gate (see ./ci.sh tenants)
#   7. history stage — the durable-history + hot-reload tests at the
#                      pinned seed (the benchmark half of
#                      `./ci.sh history` stays out of the gate — it
#                      mutates BENCH_*.json, like slo/ingest)
#   8. docs stage    — the documentation lint (see ./ci.sh docs)
#   9. benchmarks    — every benchmark compiles and runs one iteration
#                      (catches bit-rotted benchmark code without paying
#                      for a timed run; use `./ci.sh bench` for real
#                      numbers)
#  10. fuzz smoke    — every netflow/bgp fuzz target actually fuzzes for
#                      a short budget (FUZZTIME, default 10s each), not
#                      just replays its seed corpus
set -eu

cd "$(dirname "$0")"

bench() {
    date_tag=$(date +%F)
    out="BENCH_${date_tag}.json"
    echo "==> go test -bench=. -benchmem ./... > ${out}"
    go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson > "$out"
    echo "==> wrote $out"
}

bench_diff() {
    base=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
    if [ -z "$base" ]; then
        echo "bench-diff: no committed BENCH_*.json baseline" >&2
        exit 1
    fi
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    echo "==> go test -bench=. -benchmem ./... (fresh run)"
    go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson > "$tmp"
    echo "==> benchjson diff -threshold ${BENCH_THRESHOLD:-0.15} $base <fresh>"
    go run ./cmd/benchjson diff -threshold "${BENCH_THRESHOLD:-0.15}" "$base" "$tmp"
    echo "==> bench-diff passed"
}

slo() {
    tmp=$(mktemp -d)
    tierd_pid=
    trap 'rm -rf "$tmp"; [ -n "$tierd_pid" ] && kill "$tierd_pid" 2>/dev/null' EXIT

    echo "==> build tierd + loadgen"
    go build -o "$tmp/tierd" ./cmd/tierd
    go build -o "$tmp/loadgen" ./cmd/loadgen
    go build -o "$tmp/benchjson" ./cmd/benchjson

    seed="${SLO_SEED:-7}"
    echo "==> tracegen -dataset euisp -seed $seed"
    go run ./cmd/tracegen -dataset euisp -seed "$seed" -out "$tmp/trace" -stdout > "$tmp/stream.nf"

    http_addr="127.0.0.1:${SLO_HTTP_PORT:-18080}"
    udp_addr="127.0.0.1:${SLO_UDP_PORT:-12055}"
    # Durability is on: the WAL (the per-datagram cost, group-commit
    # fsync) is active for every packet ingested during the measured
    # window — that is what "durability off the hot quote path"
    # certifies. The checkpoint cadence is set past the run length so
    # the once-a-cadence background encode+fsync burst cannot alias
    # into the 5-second p999 sample on single-core CI boxes (warmup
    # runs ~1 minute, which is exactly the default interval); a final
    # checkpoint still runs at shutdown, and checkpoint correctness has
    # its own gate (./ci.sh recover).
    echo "==> tierd -listen $http_addr -udp $udp_addr -reprice 500ms -data-dir $tmp/data"
    "$tmp/tierd" -trace "$tmp/trace" -listen "$http_addr" -udp "$udp_addr" \
        -reprice 500ms -window 10m -slot 1m \
        -data-dir "$tmp/data" -checkpoint-interval 5m -wal-sync batch &
    tierd_pid=$!

    echo "==> loadgen smoke profile: ${SLO_QPS:-400} qps for ${SLO_DURATION:-5s} + ${SLO_NETFLOW_PPS:-200} pps NetFlow churn"
    "$tmp/loadgen" -target "http://$http_addr" -stream "$tmp/stream.nf" \
        -netflow "$udp_addr" -netflow-pps "${SLO_NETFLOW_PPS:-200}" \
        -qps "${SLO_QPS:-400}" -duration "${SLO_DURATION:-5s}" -workers 16 \
        -warmup -warmup-timeout 60s -seed "$seed" -pid "$tierd_pid" \
        -profile smoke -report "$tmp/slo.json"

    kill "$tierd_pid" 2>/dev/null
    wait "$tierd_pid" 2>/dev/null || true
    tierd_pid=

    base=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
    if [ -z "$base" ]; then
        # First run on a fresh checkout: there is nothing to regress
        # against, so the latency diff is skipped rather than failed.
        # `./ci.sh bench` creates the baseline the next run will use.
        echo "slo: WARNING: no committed BENCH_*.json baseline; skipping latency diff (run ./ci.sh bench to create one)" >&2
        exit 0
    fi
    "$tmp/benchjson" slo "$tmp/slo.json" > "$tmp/slo-rows.json"
    echo "==> benchjson diff -threshold ${SLO_THRESHOLD:-1.0} $base <slo rows>"
    "$tmp/benchjson" diff -threshold "${SLO_THRESHOLD:-1.0}" "$base" "$tmp/slo-rows.json"
    "$tmp/benchjson" merge "$base" "$tmp/slo-rows.json" > "$tmp/merged.json"
    cp "$tmp/merged.json" "$base"
    echo "==> slo: record merged into $base"
}

ingest() {
    tmp=$(mktemp)
    trap 'rm -f "$tmp" "$tmp.merged"' EXIT
    bt="${INGEST_BENCHTIME:-300ms}"
    echo "==> ingest stage: go test -bench 'ShardedWindowIngest|UDPIngestShards' -benchmem -benchtime $bt ./internal/stream"
    {
        go test -run='^$' -bench='BenchmarkShardedWindowIngest|BenchmarkUDPIngestShards' \
            -benchmem -benchtime "$bt" ./internal/stream
        echo "==> ingest stage: go test -bench DecodePacketInto ./internal/netflow" >&2
        go test -run='^$' -bench='BenchmarkDecodePacketInto' \
            -benchmem -benchtime "$bt" ./internal/netflow
    } | go run ./cmd/benchjson > "$tmp"
    base=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
    if [ -z "$base" ]; then
        out="BENCH_$(date +%F).json"
        echo "ingest: WARNING: no committed BENCH_*.json baseline; writing fresh $out" >&2
        cp "$tmp" "$out"
        exit 0
    fi
    echo "==> benchjson diff -threshold ${INGEST_THRESHOLD:-0.5} $base <ingest rows>"
    go run ./cmd/benchjson diff -threshold "${INGEST_THRESHOLD:-0.5}" "$base" "$tmp"
    go run ./cmd/benchjson merge "$base" "$tmp" > "$tmp.merged"
    mv "$tmp.merged" "$base"
    echo "==> ingest: scaling rows merged into $base"
}

recover() {
    # Durability gate: the in-process recovery parity matrix (clean,
    # torn WAL tail, corrupt WAL tail, corrupt checkpoint) plus the
    # out-of-process kill -9 test, each replayed at every pinned seed.
    # RECOVER_SEEDS overrides the seed list for local bisection.
    for seed in ${RECOVER_SEEDS:-1 7 99 4242 31337}; do
        echo "==> recover stage: RECOVER_SEED=${seed} go test -run 'TestRecoveryParity|TestTierdKill9Recovery' ./cmd/tierd"
        RECOVER_SEED="$seed" go test -count=1 -run 'TestRecoveryParity|TestTierdKill9Recovery' ./cmd/tierd
    done
}

tenants() {
    # The fleet parity/WFQ pair runs without -race: parity is a
    # multi-process e2e the detector cannot see across, and the WFQ
    # bound is a latency assertion the detector's slowdown turns into
    # noise (the test skips itself under -race). Isolation is the
    # concurrency test, so it runs under the detector.
    seed="${TENANTS_SEED:-4242}"
    echo "==> tenants stage: RECOVER_SEED=${seed} go test -run 'TestTenantParityKill9|TestTenantWFQFairness' ./cmd/tierd"
    RECOVER_SEED="$seed" go test -count=1 -run 'TestTenantParityKill9|TestTenantWFQFairness' ./cmd/tierd
    echo "==> tenants stage: go test -race -run TestTenantIsolation ./cmd/tierd"
    go test -race -count=1 -run 'TestTenantIsolation' ./cmd/tierd
    echo "==> tenants stage: go test -race ./internal/tenant"
    go test -race -count=1 ./internal/tenant
    echo "==> tenants stage: go test -run TestLoadgenFleetEndToEnd ./cmd/loadgen"
    go test -count=1 -run 'TestLoadgenFleetEndToEnd' ./cmd/loadgen
}

history_tests() {
    seed="${HISTORY_SEED:-4242}"
    echo "==> history stage: go test -race ./internal/histstore"
    go test -race -count=1 ./internal/histstore
    echo "==> history stage: RECOVER_SEED=${seed} go test -race -run 'TestHistoryStoreRingParity|TestReloadUnderLoad|TestFleetHistoryNamespacing' ./cmd/tierd"
    RECOVER_SEED="$seed" go test -race -count=1 \
        -run 'TestHistoryStoreRingParity|TestReloadUnderLoad|TestFleetHistoryNamespacing' ./cmd/tierd
    echo "==> history stage: RECOVER_SEED=${seed} go test -run 'TestHistoryRestoreDoubleAppend|TestTierdHistoryKill9Reload' ./cmd/tierd"
    RECOVER_SEED="$seed" go test -count=1 \
        -run 'TestHistoryRestoreDoubleAppend|TestTierdHistoryKill9Reload' ./cmd/tierd
}

history() {
    history_tests

    tmp=$(mktemp)
    trap 'rm -f "$tmp" "$tmp.merged"' EXIT
    bt="${HISTORY_BENCHTIME:-300ms}"
    echo "==> history stage: go test -bench 'BenchmarkHistory' -benchmem -benchtime $bt ./internal/histstore"
    go test -run='^$' -bench='BenchmarkHistory' -benchmem -benchtime "$bt" ./internal/histstore \
        | go run ./cmd/benchjson > "$tmp"
    base=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
    if [ -z "$base" ]; then
        out="BENCH_$(date +%F).json"
        echo "history: WARNING: no committed BENCH_*.json baseline; writing fresh $out" >&2
        cp "$tmp" "$out"
        exit 0
    fi
    echo "==> benchjson diff -threshold ${HISTORY_THRESHOLD:-0.5} $base <history rows>"
    go run ./cmd/benchjson diff -threshold "${HISTORY_THRESHOLD:-0.5}" "$base" "$tmp"
    go run ./cmd/benchjson merge "$base" "$tmp" > "$tmp.merged"
    mv "$tmp.merged" "$base"
    echo "==> history: append-throughput rows merged into $base"
}

docs() {
    echo "==> docs stage: go run ./cmd/docscheck"
    go run ./cmd/docscheck
}

fuzz_smoke() {
    # `go test -fuzz` accepts only one target per run, so iterate.
    for target in FuzzDecodePacket FuzzUDPDatagramPath FuzzReader; do
        echo "==> fuzz ${target} (internal/netflow, ${FUZZTIME})"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime="$FUZZTIME" ./internal/netflow
    done
    for target in FuzzDecodeUpdate FuzzDecodeBody FuzzDecodeOpen; do
        echo "==> fuzz ${target} (internal/bgp, ${FUZZTIME})"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime="$FUZZTIME" ./internal/bgp
    done
}

if [ "${1:-}" = "bench" ]; then
    bench
    exit 0
fi

if [ "${1:-}" = "bench-diff" ]; then
    bench_diff
    exit 0
fi

if [ "${1:-}" = "slo" ]; then
    slo
    exit 0
fi

if [ "${1:-}" = "ingest" ]; then
    ingest
    exit 0
fi

if [ "${1:-}" = "recover" ]; then
    recover
    exit 0
fi

if [ "${1:-}" = "tenants" ]; then
    tenants
    exit 0
fi

if [ "${1:-}" = "history" ]; then
    history
    exit 0
fi

if [ "${1:-}" = "docs" ]; then
    docs
    exit 0
fi

FUZZTIME="${FUZZTIME:-10s}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

CHAOS_SEED="${CHAOS_SEED:-4242}"
echo "==> chaos stage: CHAOS_SEED=${CHAOS_SEED} go test -race -run TestTierdChaos ./cmd/tierd"
CHAOS_SEED="$CHAOS_SEED" go test -race -count=1 -run 'TestTierdChaos' ./cmd/tierd

recover

tenants

history_tests

docs

echo "==> go test -run='^$' -bench=. -benchtime=1x ./..."
go test -run='^$' -bench=. -benchtime=1x ./...

fuzz_smoke

echo "==> ci: all gates passed"
