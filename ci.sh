#!/bin/sh
# Tier-1 gate: everything a change must pass before it lands.
#
#   ./ci.sh
#
# Steps, in order (each must pass):
#   1. go vet        — static analysis across every package
#   2. go build      — the full module compiles, commands included
#   3. go test -race — the whole test suite under the race detector,
#                      covering the parallel experiment engine, the
#                      concurrent NetFlow collector, and the registry
#   4. benchmarks    — every benchmark compiles and runs one iteration
#                      (catches bit-rotted benchmark code without paying
#                      for a timed run; use `go test -bench=.` for real
#                      numbers)
set -eu

cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -run='^$' -bench=. -benchtime=1x ./..."
go test -run='^$' -bench=. -benchtime=1x ./...

echo "==> ci: all gates passed"
