// Quickstart: fit a tiny transit market and see why tiered pricing beats
// a blended rate — the paper's Figure 1 story on three flows.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	transit "tieredpricing"
)

func main() {
	// Observed demands at the current blended rate of $20/Mbps/month: a
	// transit customer sends most traffic to nearby destinations.
	flows := []transit.Flow{
		{ID: "metro", Demand: 800, Distance: 8},
		{ID: "regional", Demand: 420, Distance: 60},
		{ID: "national", Demand: 260, Distance: 300},
		{ID: "continental", Demand: 115, Distance: 900},
		{ID: "transatlantic", Demand: 40, Distance: 3600},
	}

	market, err := transit.NewMarket(flows,
		transit.CED{Alpha: 1.1},    // constant-elasticity demand
		transit.Linear{Theta: 0.2}, // cost grows linearly with distance
		20.0 /* blended $/Mbps/mo */)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("status quo: every destination at $20.00 → profit $%.0f\n", market.OriginalProfit)
	fmt.Printf("theoretical best (one price per destination) → profit $%.0f\n\n", market.MaxProfit)

	for _, tiers := range []int{1, 2, 3, 4} {
		out, err := market.Run(transit.Optimal{}, tiers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d tier(s): profit $%.0f, capture %5.1f%%  prices:", tiers, out.Profit, out.Capture*100)
		for b, price := range out.Prices {
			fmt.Printf("  tier%d=$%.2f(", b, price)
			for j, i := range out.Partition[b] {
				if j > 0 {
					fmt.Print(",")
				}
				fmt.Print(flows[i].ID)
			}
			fmt.Print(")")
		}
		fmt.Println()
	}

	fmt.Println("\nthree well-chosen tiers already capture nearly all of the headroom —")
	fmt.Println("the paper's headline result (§4.2.2).")
}
