// Accounting pipeline: run the paper's §5 deployment story end to end —
// fit tiers on the EU ISP dataset, announce tier-tagged routes over a
// real BGP session on loopback TCP, replay the NetFlow trace into the
// flow-based accountant, and reconcile the bill against per-tier link
// counters.
//
//	go run ./examples/accountingpipeline
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/netip"

	transit "tieredpricing"
)

func main() {
	ds, err := transit.DatasetEUISP(1)
	if err != nil {
		log.Fatal(err)
	}
	market, err := transit.NewMarket(ds.Flows,
		transit.CED{Alpha: 1.1}, transit.Linear{Theta: 0.2}, ds.P0)
	if err != nil {
		log.Fatal(err)
	}
	out, err := market.Run(transit.ProfitWeighted{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted %d flows into %d tiers at prices %v\n",
		len(ds.Flows), len(out.Prices), formatted(out.Prices))

	// §5.1 — associate destinations with tiers via BGP extended
	// communities over a live session.
	tierOf := map[netip.Prefix]int{}
	var prefixes []netip.Prefix
	for b, block := range out.Partition {
		for _, i := range block {
			tierOf[ds.Meta[i].DstPrefix] = b
			prefixes = append(prefixes, ds.Meta[i].DstPrefix)
		}
	}
	rib, err := announce(prefixes, tierOf, out.Prices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customer RIB holds %d tier-tagged routes after the BGP exchange\n", rib.Len())

	// §5.2(b) — flow-based accounting from the raw NetFlow streams.
	fa, err := transit.NewFlowAccountant(rib)
	if err != nil {
		log.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(transit.EmitConfig{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, stream := range streams {
		rd := transit.NewNetFlowReader(bytes.NewReader(stream))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			fa.Ingest(h, recs)
		}
	}
	flowBill, err := transit.ComputeBill(fa.PerTierOctets(), out.Prices, ds.DurationSec)
	if err != nil {
		log.Fatal(err)
	}

	// §5.2(a) — link-based accounting: the data path steers each flow
	// onto its tier's link; SNMP counters are polled.
	lm := transit.NewLinkMeter()
	for tier := range out.Prices {
		if err := lm.AddLink(uint16(100+tier), tier); err != nil {
			log.Fatal(err)
		}
	}
	for i, f := range ds.Flows {
		route, ok := rib.Lookup(ds.Meta[i].DstPrefix.Addr().Next())
		if !ok || route.Tier == nil {
			log.Fatalf("flow %s has no tier route", f.ID)
		}
		ifIndex, _ := lm.LinkFor(int(route.Tier.Tier))
		if err := lm.Count(ifIndex, uint64(f.Demand*1e6/8*ds.DurationSec)); err != nil {
			log.Fatal(err)
		}
	}
	linkBill, err := transit.ComputeBill(transit.PerTierOctets(lm.Poll()), out.Prices, ds.DurationSec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntier  price      flow-based bill   link-based bill")
	for tier := range out.Prices {
		fmt.Printf("  %d   $%6.2f    $%12.2f    $%12.2f\n",
			tier, out.Prices[tier], flowBill.ChargePerTier[tier], linkBill.ChargePerTier[tier])
	}
	fmt.Printf("total            $%12.2f    $%12.2f\n", flowBill.Total, linkBill.Total)
	fmt.Println("\nthe two §5.2 architectures agree (up to 1-in-1000 sampling noise), so an")
	fmt.Println("ISP can deploy tiered pricing post facto without per-tier links.")
}

// announce runs the provider/customer BGP exchange on loopback TCP and
// returns the customer's RIB.
func announce(prefixes []netip.Prefix, tierOf map[netip.Prefix]int, prices []float64) (*transit.RIB, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	type result struct {
		rib *transit.RIB
		err error
	}
	done := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer conn.Close()
		sess, err := transit.EstablishBGP(conn, transit.BGPOpen{AS: 64513, HoldTime: 180, ID: 2})
		if err != nil {
			done <- result{nil, err}
			return
		}
		rib := transit.NewRIB()
		for {
			msg, err := sess.Recv()
			if err == io.EOF {
				done <- result{rib, nil}
				return
			}
			if err != nil {
				done <- result{nil, err}
				return
			}
			if u, ok := msg.(*transit.BGPUpdate); ok {
				if err := rib.Apply(u); err != nil {
					done <- result{nil, err}
					return
				}
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, err
	}
	sess, err := transit.EstablishBGP(conn, transit.BGPOpen{AS: 64512, HoldTime: 180, ID: 1})
	if err != nil {
		conn.Close()
		return nil, err
	}
	updates, err := transit.AnnounceTiered(prefixes, netip.MustParseAddr("192.0.2.1"),
		func(p netip.Prefix) int { return tierOf[p] }, prices)
	if err != nil {
		sess.Close()
		return nil, err
	}
	for _, u := range updates {
		for len(u.Announced) > 0 {
			n := len(u.Announced)
			if n > 500 {
				n = 500
			}
			part := u
			part.Announced = u.Announced[:n]
			if err := sess.SendUpdate(part); err != nil {
				sess.Close()
				return nil, err
			}
			u.Announced = u.Announced[n:]
		}
	}
	if err := sess.Close(); err != nil {
		return nil, err
	}
	res := <-done
	return res.rib, res.err
}

func formatted(prices []float64) []string {
	out := make([]string, len(prices))
	for i, p := range prices {
		out[i] = fmt.Sprintf("$%.2f", p)
	}
	return out
}
