// Regional pricing: structure a CDN's transit contract into regional
// tiers (the paper's §2.1 "regional pricing" offering) and compare the
// naive region-based division with demand-aware bundling.
//
//	go run ./examples/regionalpricing
package main

import (
	"fmt"
	"log"

	transit "tieredpricing"
)

func main() {
	// A synthetic international CDN calibrated to the paper's Table 1:
	// 96 Gbps across 200 destination aggregates resolved through GeoIP.
	ds, err := transit.DatasetCDN(1)
	if err != nil {
		log.Fatal(err)
	}

	// Regional cost model (§3.3): metro/national/international classes
	// priced 1 : 2^θ : 3^θ.
	market, err := transit.NewMarket(ds.Flows,
		transit.Logit{Alpha: 1.1, S0: 0.2},
		transit.Regional{Theta: 1.1},
		ds.P0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CDN market: %d flows, blended rate $%.0f, headroom $%.0f → $%.0f\n\n",
		len(ds.Flows), ds.P0, market.OriginalProfit, market.MaxProfit)

	for _, s := range []transit.Strategy{
		transit.ProfitWeighted{}, // demand-driven, ignores the class structure
		transit.CostWeighted{},   // ≈ today's region-discount practice
		transit.Optimal{},
	} {
		out, err := market.Run(s, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s capture %5.1f%%\n", s.Name(), out.Capture*100)
		for b := range out.Partition {
			counts := map[transit.Region]int{}
			var demand float64
			for _, i := range out.Partition[b] {
				counts[ds.Flows[i].Region]++
				demand += ds.Flows[i].Demand
			}
			fmt.Printf("  tier %d @ $%6.2f/Mbps  %6.1f Gbps  (metro %d, national %d, international %d)\n",
				b, out.Prices[b], demand/1000,
				counts[transit.RegionMetro], counts[transit.RegionNational],
				counts[transit.RegionInternational])
		}
	}

	fmt.Println("\nwith only three regional cost classes, tiers that respect the class")
	fmt.Println("boundaries (cost-weighted, optimal) capture nearly everything, while a")
	fmt.Println("purely demand-driven grouping mixes classes and misprices them — the")
	fmt.Println("paper's §4.3.1 lesson behind its class-aware heuristic.")
}
