// Peering break-even: the Figure 2 scenario — a CDN with a backbone
// presence in NYC decides whether to procure a private link to the Boston
// IXP instead of paying the upstream's blended rate, and we locate the
// market-failure band that tiered pricing would eliminate.
//
//	go run ./examples/peeringbreakeven
package main

import (
	"fmt"
	"log"

	transit "tieredpricing"
)

func main() {
	base := transit.PeeringInputs{
		BlendedRate:        20,  // R: the upstream's one-size-fits-all rate
		ISPCost:            4,   // c_ISP: its real cost for NYC→Boston flows
		Margin:             0.3, // M: the margin it needs to stay in business
		AccountingOverhead: 1,   // A: cost of accounting for the tier (§5.2)
	}

	fmt.Printf("blended rate R = $%.0f, ISP cost for the local flows = $%.0f\n",
		base.BlendedRate, base.ISPCost)
	fmt.Printf("cheapest profitable tiered offer = (M+1)·c_ISP + A = $%.2f\n\n",
		base.TieredFloor())

	var costs []float64
	for c := 2.0; c <= 24; c += 2 {
		costs = append(costs, c)
	}
	points, err := transit.SweepPeering(base, costs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("direct-link cost   decision            consequence")
	fmt.Println("---------------------------------------------------------------")
	for _, p := range points {
		var note string
		switch p.Outcome {
		case transit.StayWithISP:
			note = "customer keeps buying transit"
		case transit.EfficientBypass:
			note = "bypass is cheaper than any profitable ISP offer"
		case transit.MarketFailure:
			note = fmt.Sprintf("bypass wastes $%.2f/Mbps vs a tiered offer", p.WelfareLoss)
		}
		fmt.Printf("   $%5.2f          %-18s  %s\n", p.DirectCost, p.Outcome, note)
	}

	fmt.Println("\nevery row between the tiered floor and R is revenue the ISP loses AND")
	fmt.Println("capacity society overpays for — the pressure behind tiered pricing (§2.2.2).")
}
