// Repricing: the §5.1 operations story at service scale. A provider
// speaker serves two customers over live BGP sessions; when the transit
// market moves (the paper: prices fall ~30% per year), the operator
// re-fits the market, re-bundles, and pushes an incremental tier
// re-pricing to every connected customer — no session resets, no config
// changes on the customer side.
//
//	go run ./examples/repricing
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/netip"
	"time"

	transit "tieredpricing"
)

func main() {
	ds, err := transit.DatasetEUISP(1)
	if err != nil {
		log.Fatal(err)
	}

	speaker, err := transit.NewSpeaker("127.0.0.1:0",
		transit.BGPOpen{AS: 64512, HoldTime: 180, ID: 1},
		netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		log.Fatal(err)
	}
	defer speaker.Close()

	customers := []*customer{
		dial(speaker.Addr(), 64601),
		dial(speaker.Addr(), 64602),
	}
	waitSessions(speaker, len(customers))
	fmt.Printf("%d customers connected to the provider speaker\n\n", speaker.Sessions())

	// Year 1: blended rate $20, three profit-weighted tiers.
	if err := reprice(speaker, ds, 20.0); err != nil {
		log.Fatal(err)
	}
	waitRoutes(customers, len(ds.Flows))
	show(customers[0], ds, "year 1 (P0=$20)")

	// Year 2: the market fell 30%; re-fit at $14 and push the diff.
	if err := reprice(speaker, ds, 14.0); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the diff propagate
	show(customers[1], ds, "year 2 (P0=$14, pushed as an incremental diff)")

	for _, c := range customers {
		c.sess.Close()
	}
	fmt.Println("customers repriced in place: the communities travel with the routes (§5.1).")
}

// reprice fits the market at blended rate p0 and installs the resulting
// tier table on the speaker.
func reprice(speaker *transit.Speaker, ds *transit.Dataset, p0 float64) error {
	market, err := transit.NewMarket(ds.Flows,
		transit.CED{Alpha: 1.1}, transit.Linear{Theta: 0.2}, p0)
	if err != nil {
		return err
	}
	out, err := market.Run(transit.ProfitWeighted{}, 3)
	if err != nil {
		return err
	}
	tierOf := map[netip.Prefix]int{}
	prefixes := make([]netip.Prefix, 0, len(ds.Flows))
	for b, block := range out.Partition {
		for _, i := range block {
			tierOf[ds.Meta[i].DstPrefix] = b
			prefixes = append(prefixes, ds.Meta[i].DstPrefix)
		}
	}
	return speaker.Reprice(prefixes,
		func(p netip.Prefix) int { return tierOf[p] }, out.Prices)
}

type customer struct {
	sess *transit.BGPSession
	rib  *transit.RIB
}

func dial(addr string, as uint16) *customer {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := transit.EstablishBGP(conn,
		transit.BGPOpen{AS: as, HoldTime: 180, ID: uint32(as)})
	if err != nil {
		log.Fatal(err)
	}
	c := &customer{sess: sess, rib: transit.NewRIB()}
	go func() {
		for {
			msg, err := sess.Recv()
			if err == io.EOF || err != nil {
				return
			}
			if u, ok := msg.(*transit.BGPUpdate); ok {
				if err := c.rib.Apply(u); err != nil {
					log.Fatal(err)
				}
			}
		}
	}()
	return c
}

func waitSessions(s *transit.Speaker, n int) {
	for deadline := time.Now().Add(5 * time.Second); s.Sessions() < n; {
		if time.Now().After(deadline) {
			log.Fatalf("only %d sessions", s.Sessions())
		}
		time.Sleep(time.Millisecond)
	}
}

func waitRoutes(customers []*customer, n int) {
	deadline := time.Now().Add(5 * time.Second)
	for _, c := range customers {
		for c.rib.Len() < n {
			if time.Now().After(deadline) {
				log.Fatalf("customer RIB stuck at %d routes", c.rib.Len())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// show prints a customer's view of the tier structure.
func show(c *customer, ds *transit.Dataset, label string) {
	type tierView struct {
		price  float64
		routes int
	}
	tiers := map[uint16]*tierView{}
	for _, r := range c.rib.Routes() {
		if r.Tier == nil {
			continue
		}
		tv, ok := tiers[r.Tier.Tier]
		if !ok {
			tv = &tierView{price: float64(r.Tier.PriceMilli) / 1000}
			tiers[r.Tier.Tier] = tv
		}
		tv.routes++
	}
	fmt.Printf("%s — %d routes in RIB:\n", label, c.rib.Len())
	for tier := uint16(0); int(tier) < len(tiers); tier++ {
		tv := tiers[tier]
		fmt.Printf("  tier %d: $%6.2f/Mbps, %d destinations\n", tier, tv.price, tv.routes)
	}
	fmt.Println()
}
