package transit

import (
	"bytes"
	"strings"
	"testing"
)

// The façade tests exercise the public API exactly as a downstream user
// would (the examples double as living documentation; these are the
// executable checks).

func quickstartFlows() []Flow {
	return []Flow{
		{ID: "metro", Demand: 800, Distance: 8},
		{ID: "regional", Demand: 420, Distance: 60},
		{ID: "national", Demand: 260, Distance: 300},
		{ID: "continental", Demand: 115, Distance: 900},
		{ID: "transatlantic", Demand: 40, Distance: 3600},
	}
}

func TestPublicAPIQuickstart(t *testing.T) {
	m, err := NewMarket(quickstartFlows(), CED{Alpha: 1.1}, Linear{Theta: 0.2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(Optimal{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Capture < 0.8 {
		t.Errorf("3-tier capture = %v, want ≥ 0.8", out.Capture)
	}
	if len(out.Prices) != 3 {
		t.Errorf("got %d prices", len(out.Prices))
	}
	// Tier prices must be increasing with tier cost (cost-contiguous).
	for b := 1; b < len(out.Prices); b++ {
		if out.Prices[b] < out.Prices[b-1] {
			t.Errorf("tier prices not increasing: %v", out.Prices)
		}
	}
}

func TestPublicAPILogitAndSplit(t *testing.T) {
	split, err := SplitByDestType(quickstartFlows(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMarket(split, Logit{Alpha: 1.1, S0: 0.2}, DestType{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(ClassAware{Inner: ProfitWeighted{}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Capture < 0.95 {
		t.Errorf("two-class capture at b=2 = %v, want ≈1", out.Capture)
	}
}

func TestStrategiesAndLookup(t *testing.T) {
	if len(Strategies()) != 6 {
		t.Errorf("Strategies() = %d entries", len(Strategies()))
	}
	for _, s := range Strategies() {
		got, err := StrategyByName(s.Name())
		if err != nil {
			t.Errorf("StrategyByName(%q): %v", s.Name(), err)
		}
		if got.Name() != s.Name() {
			t.Errorf("lookup mismatch for %q", s.Name())
		}
	}
	if _, err := StrategyByName("class-aware profit-weighted"); err != nil {
		t.Errorf("class-aware lookup: %v", err)
	}
	if _, err := StrategyByName("nope"); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

func TestDatasets(t *testing.T) {
	for _, name := range DatasetNames() {
		ds, err := DatasetByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Flows) == 0 {
			t.Errorf("%s: no flows", name)
		}
	}
	if _, err := DatasetByName("nope", 1); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if _, err := DatasetEUISP(1); err != nil {
		t.Error(err)
	}
	if _, err := DatasetCDN(1); err != nil {
		t.Error(err)
	}
	if _, err := DatasetInternet2(1); err != nil {
		t.Error(err)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("fig4", 1, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig4") {
		t.Error("output missing experiment id")
	}
	if err := RunExperiment("nope", 1, &buf); err == nil {
		t.Error("expected error for unknown experiment")
	}
	ids := ExperimentIDs()
	if len(ids) != 28 {
		t.Errorf("ExperimentIDs() = %d entries, want 28", len(ids))
	}
}

func TestPeeringFacade(t *testing.T) {
	in := PeeringInputs{BlendedRate: 20, ISPCost: 4, Margin: 0.3,
		AccountingOverhead: 1, DirectCost: 10}
	out, err := DecidePeering(in)
	if err != nil {
		t.Fatal(err)
	}
	if out != MarketFailure {
		t.Errorf("outcome = %v, want market failure", out)
	}
	points, err := SweepPeering(in, []float64{2, 10, 25})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Outcome != EfficientBypass || points[2].Outcome != StayWithISP {
		t.Errorf("sweep outcomes wrong: %+v", points)
	}
}

func TestOfferingsFacade(t *testing.T) {
	ds, err := DatasetEUISP(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMarket(ds.Flows, CED{Alpha: 1.1}, Linear{Theta: 0.2}, ds.P0)
	if err != nil {
		t.Fatal(err)
	}
	if len(Offerings()) != 4 {
		t.Fatalf("taxonomy size = %d", len(Offerings()))
	}
	out, err := EvaluateOffering(m, RegionalPricing{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Strategy != "regional pricing" || out.Capture <= 0 || out.Capture > 1 {
		t.Fatalf("regional pricing outcome = %+v", out)
	}
	// A product with an impossible split surfaces its error.
	uniform := append([]Flow(nil), ds.Flows...)
	for i := range uniform {
		uniform[i].OnNet = false
	}
	m2, err := NewMarket(uniform, CED{Alpha: 1.1}, Linear{Theta: 0.2}, ds.P0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateOffering(m2, PaidPeering{}); err == nil {
		t.Error("expected error for single-class paid peering")
	}
}

func TestRoutingFacade(t *testing.T) {
	ds, err := DatasetInternet2(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMarket(ds.Flows, CED{Alpha: 1.1}, Linear{Theta: 0.2}, ds.P0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(Optimal{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	quote, err := BandQuote(m.Flows, out.Partition, out.Prices)
	if err != nil {
		t.Fatal(err)
	}
	p := &RoutePlanner{Backbone: ds.Graph, Origin: "New York", InternalCostPerMbpsMile: 0.001}
	coords := func(i int) (float64, float64, error) {
		c, ok := ds.Graph.City(ds.Meta[i].DstCity)
		if !ok {
			t.Fatalf("city %q missing", ds.Meta[i].DstCity)
		}
		return c.Lat, c.Lon, nil
	}
	_, sum, err := p.Plan(m.Flows, coords, quote)
	if err != nil {
		t.Fatal(err)
	}
	if !(sum.PlannedMonthly <= sum.HotPotatoMonthly) {
		t.Fatalf("plan worse than hot potato: %+v", sum)
	}
}
