package transit

import (
	"tieredpricing/internal/econ"
	"tieredpricing/internal/products"
	"tieredpricing/internal/routing"
	"tieredpricing/internal/topology"
)

// This file exposes the market-structure extensions: the §2.1 product
// taxonomy as bundling rules, and the §5.1 customer-side tag-aware
// routing planner.

// Offering is a §2.1 wholesale product structure (a fixed tier rule).
type Offering = products.Offering

// The §2.1 taxonomy.
type (
	// BlendedTransit is one rate for everything.
	BlendedTransit = products.BlendedTransit
	// PaidPeering splits on-net from off-net destinations.
	PaidPeering = products.PaidPeering
	// BackplanePeering splits IXP-offloadable local traffic from
	// backbone transit.
	BackplanePeering = products.BackplanePeering
	// RegionalPricing sells one rate per destination region.
	RegionalPricing = products.RegionalPricing
)

// Offerings returns the §2.1 taxonomy in presentation order.
func Offerings() []Offering { return products.All() }

// EvaluateOffering prices a product's fixed tiers on a fitted market and
// returns the outcome (capture measured like any strategy's).
func EvaluateOffering(m *Market, o Offering) (Outcome, error) {
	parts, err := o.Tiers(m.Flows)
	if err != nil {
		return Outcome{}, err
	}
	prices, err := m.Demand.PriceBundles(m.Flows, parts)
	if err != nil {
		return Outcome{}, err
	}
	profit, err := m.Demand.Profit(m.Flows, parts, prices)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Strategy:  o.Name(),
		Bundles:   len(parts),
		Partition: parts,
		Prices:    prices,
		Profit:    profit,
		Capture:   m.Capture(profit),
	}, nil
}

// Tag-aware routing (§5.1 customer side).
type (
	// RoutePlanner trades internal backbone haul against tier prices.
	RoutePlanner = routing.Planner
	// RouteDecision is the per-destination egress choice.
	RouteDecision = routing.Decision
	// RouteSummary aggregates a plan.
	RouteSummary = routing.Summary
	// TransitQuote prices an (egress, destination) hand-off.
	TransitQuote = routing.Quote
	// City is a located PoP.
	City = topology.City
)

// BandQuote derives a TransitQuote from a tier structure's distance
// bands — the information the §5.1 tier tags expose.
func BandQuote(flows []econ.Flow, partition [][]int, prices []float64) (TransitQuote, error) {
	return routing.BandQuote(flows, partition, prices)
}
