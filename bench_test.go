package transit

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section, each regenerating the artifact from
// scratch (dataset synthesis, model fitting, bundling, pricing). Run with
//
//	go test -bench=. -benchmem
//
// plus micro-benchmarks for the hot paths (bundle pricing, the optimal
// DP, the logit fixed point, NetFlow collection).

import (
	"io"
	"runtime"
	"testing"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/experiments"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/traces"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig1BlendedVsTiered(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFig2PeeringBreakEven(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3CEDDemandCurves(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig4CEDProfitCurves(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5LogitDemandCurves(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6ConcaveFit(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkTable1Datasets(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkFig8ProfitCaptureCED(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9ProfitCaptureLogit(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkFig10LinearCostSensitivity(b *testing.B) {
	benchExperiment(b, "fig10")
}
func BenchmarkFig11ConcaveCostSensitivity(b *testing.B) {
	benchExperiment(b, "fig11")
}
func BenchmarkFig12RegionalCostSensitivity(b *testing.B) {
	benchExperiment(b, "fig12")
}
func BenchmarkFig13DestTypeSensitivity(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14AlphaSensitivity(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15BlendedRateSensitivity(b *testing.B) {
	benchExperiment(b, "fig15")
}
func BenchmarkFig16MarketShareSensitivity(b *testing.B) {
	benchExperiment(b, "fig16")
}
func BenchmarkFig17AccountingPipeline(b *testing.B) { benchExperiment(b, "fig17") }

// Full-evaluation sweep: every registered experiment, serial vs fanned
// out. The pair tracks the parallel engine's speedup in the perf
// trajectory (on an N-core runner the parallel run should approach N×
// until the longest single experiment dominates).

func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunAll(experiments.Options{Seed: 1, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkFullEvaluationSerial(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkFullEvaluationParallel(b *testing.B) {
	benchRunAll(b, runtime.NumCPU())
}
func BenchmarkFullEvaluationParallel4(b *testing.B) { benchRunAll(b, 4) }

// Micro-benchmarks for the hot paths.

// benchMarket fits a 200-flow EU ISP market once for reuse.
func benchMarket(b *testing.B, dm econ.Model) *core.Market {
	b.Helper()
	ds, err := traces.EUISP(1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMarket(ds.Flows, dm, cost.Linear{Theta: 0.2}, ds.P0)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkOptimalBundlingCED(b *testing.B) {
	m := benchMarket(b, econ.CED{Alpha: 1.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(bundling.Optimal{}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalBundlingLogit(b *testing.B) {
	m := benchMarket(b, econ.Logit{Alpha: 1.1, S0: 0.2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(bundling.Optimal{}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfitWeightedBundling(b *testing.B) {
	m := benchMarket(b, econ.CED{Alpha: 1.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(bundling.ProfitWeighted{}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogitFixedPointPricing(b *testing.B) {
	m := benchMarket(b, econ.Logit{Alpha: 1.1, S0: 0.2})
	parts := econ.Singletons(len(m.Flows))
	logit := econ.Logit{Alpha: 1.1, S0: 0.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logit.PriceBundles(m.Flows, parts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarketFit(b *testing.B) {
	ds, err := traces.EUISP(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewMarket(ds.Flows, econ.CED{Alpha: 1.1},
			cost.Linear{Theta: 0.2}, ds.P0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetFlowCollection(b *testing.B) {
	ds, err := traces.EUISP(1)
	if err != nil {
		b.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	var total int
	for _, s := range streams {
		total += len(s)
	}
	b.SetBytes(int64(total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := netflow.NewCollector(traces.AggregateKey)
		for _, stream := range streams {
			rd := netflow.NewReader(newSliceReader(stream))
			for {
				h, recs, err := rd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				c.Ingest(h, recs)
			}
		}
		if len(c.Aggregates()) == 0 {
			b.Fatal("no aggregates")
		}
	}
}

// sliceReader is a minimal io.Reader over a byte slice (avoids importing
// bytes just for the benchmark).
type sliceReader struct {
	data []byte
	off  int
}

func newSliceReader(data []byte) *sliceReader { return &sliceReader{data: data} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// Ablation and extension benchmarks (DESIGN.md §6).

func BenchmarkAblation1ExhaustiveVsDP(b *testing.B)  { benchExperiment(b, "ablation1") }
func BenchmarkAblation2ClassAwareGuard(b *testing.B) { benchExperiment(b, "ablation2") }
func BenchmarkAblation3DedupBias(b *testing.B)       { benchExperiment(b, "ablation3") }
func BenchmarkAblation4Granularity(b *testing.B)     { benchExperiment(b, "ablation4") }
func BenchmarkExt1PercentileBilling(b *testing.B)    { benchExperiment(b, "ext1") }
func BenchmarkExt2ProductTaxonomy(b *testing.B)      { benchExperiment(b, "ext2") }
func BenchmarkExt3TagAwareRouting(b *testing.B)      { benchExperiment(b, "ext3") }
func BenchmarkExt4WelfareAccounting(b *testing.B)    { benchExperiment(b, "ext4") }
func BenchmarkAblation5SeedRobustness(b *testing.B)  { benchExperiment(b, "ablation5") }
func BenchmarkExt5IXPExpansion(b *testing.B)         { benchExperiment(b, "ext5") }
func BenchmarkExt6PriceDeclineTrend(b *testing.B)    { benchExperiment(b, "ext6") }
