package transit

import (
	"bytes"
	"io"
	"net"
	"net/netip"
	"testing"
)

// TestDeployFacadeEndToEnd drives the whole §5 pipeline through the
// public API, exactly as examples/accountingpipeline does: fit tiers,
// announce them over a live BGP session, replay the NetFlow trace into
// the flow accountant, and reconcile against per-tier link counters.
func TestDeployFacadeEndToEnd(t *testing.T) {
	ds, err := DatasetEUISP(2)
	if err != nil {
		t.Fatal(err)
	}
	market, err := NewMarket(ds.Flows, CED{Alpha: 1.1}, Linear{Theta: 0.2}, ds.P0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := market.Run(ProfitWeighted{}, 3)
	if err != nil {
		t.Fatal(err)
	}

	// §5.1 over the facade: provider Speaker, customer session with loop
	// prevention enabled.
	speaker, err := NewSpeaker("127.0.0.1:0",
		BGPOpen{AS: 64512, HoldTime: 180, ID: 1}, netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer speaker.Close()

	tierOf := map[netip.Prefix]int{}
	var prefixes []netip.Prefix
	for b, block := range out.Partition {
		for _, i := range block {
			tierOf[ds.Meta[i].DstPrefix] = b
			prefixes = append(prefixes, ds.Meta[i].DstPrefix)
		}
	}
	// AnnounceTiered is the session-level alternative to the Speaker;
	// exercise it for coverage of the facade path.
	if _, err := AnnounceTiered(prefixes, netip.MustParseAddr("192.0.2.1"),
		func(p netip.Prefix) int { return tierOf[p] }, out.Prices); err != nil {
		t.Fatal(err)
	}
	if err := speaker.Reprice(prefixes,
		func(p netip.Prefix) int { return tierOf[p] }, out.Prices); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", speaker.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := EstablishBGP(conn, BGPOpen{AS: 64513, HoldTime: 180, ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	rib := NewRIB()
	rib.LocalAS = 64513
	for rib.Len() < len(ds.Flows) {
		msg, err := sess.Recv()
		if err != nil {
			t.Fatalf("RIB stuck at %d routes: %v", rib.Len(), err)
		}
		if u, ok := msg.(*BGPUpdate); ok {
			if err := rib.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
	}
	sess.Close()

	// §5.2(b) flow-based accounting from the replayed trace.
	fa, err := NewFlowAccountant(rib)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(EmitConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, stream := range streams {
		rd := NewNetFlowReader(bytes.NewReader(stream))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			fa.Ingest(h, recs)
		}
	}
	flowBill, err := ComputeBill(fa.PerTierOctets(), out.Prices, ds.DurationSec)
	if err != nil {
		t.Fatal(err)
	}

	// §5.2(a) link-based accounting through the SNMP agent + poller
	// (wrapping counters) instead of the plain link meter.
	agent := NewSNMPAgent()
	poller := NewSNMPPoller()
	lm := NewLinkMeter()
	for tier := range out.Prices {
		if err := lm.AddLink(uint16(100+tier), tier); err != nil {
			t.Fatal(err)
		}
		poller.Observe(uint16(100+tier), agent.Read(uint16(100+tier)))
	}
	for i, f := range market.Flows {
		route, ok := rib.Lookup(ds.Meta[i].DstPrefix.Addr().Next())
		if !ok || route.Tier == nil {
			t.Fatalf("flow %q unrouted", f.ID)
		}
		ifIndex, _ := lm.LinkFor(int(route.Tier.Tier))
		octets := uint64(f.Demand * 1e6 / 8 * ds.DurationSec)
		// Feed the wrapping counter in sub-wrap chunks and poll between
		// them, as a real poller would.
		for octets > 0 {
			chunk := octets
			if chunk > 3_000_000_000 {
				chunk = 3_000_000_000
			}
			agent.Count(ifIndex, chunk)
			poller.Observe(ifIndex, agent.Read(ifIndex))
			octets -= chunk
		}
	}
	perTier := map[int]uint64{}
	for tier := range out.Prices {
		ifIndex, _ := lm.LinkFor(tier)
		perTier[tier] = poller.Total(ifIndex)
	}
	linkBill, err := ComputeBill(perTier, out.Prices, ds.DurationSec)
	if err != nil {
		t.Fatal(err)
	}

	if rel := (flowBill.Total - linkBill.Total) / linkBill.Total; rel < -0.01 || rel > 0.01 {
		t.Fatalf("bills disagree: flow $%.2f vs link $%.2f", flowBill.Total, linkBill.Total)
	}
	if fa.Unrouted() != 0 {
		t.Fatalf("unrouted octets: %d", fa.Unrouted())
	}
	// PerTierOctets facade over meter samples must agree with the poller.
	if got := PerTierOctets(lm.Poll()); len(got) != len(out.Prices) {
		t.Fatalf("meter per-tier = %v", got)
	}
	// The dataset aggregate key facade resolves emitted records.
	rec := NetFlowRecord{SrcAddr: ds.Meta[0].SrcIP, DstAddr: ds.Meta[0].DstPrefix.Addr().Next()}
	if DatasetAggregateKey(rec) == "" {
		t.Error("aggregate key empty")
	}
	c := NewCollector(DatasetAggregateKey)
	c.Ingest(NetFlowHeader{}, []NetFlowRecord{rec})
	if len(c.Aggregates()) != 1 {
		t.Error("facade collector did not aggregate")
	}
}
